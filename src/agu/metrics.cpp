#include "agu/metrics.hpp"

#include "support/check.hpp"
#include "support/stats.hpp"

namespace dspaddr::agu {

namespace {

std::int64_t shared_body_words(const ir::Kernel& kernel) {
  return kernel.data_ops() +
         static_cast<std::int64_t>(kernel.accesses().size());
}

}  // namespace

CodeMetrics optimized_metrics(const ir::Kernel& kernel,
                              const core::Allocation& allocation,
                              const MachineModel& machine) {
  const std::int64_t setup =
      static_cast<std::int64_t>(allocation.register_count());
  const std::int64_t body = shared_body_words(kernel) + allocation.cost() +
                            machine.loop_control_words;
  CodeMetrics metrics;
  metrics.size_words = machine.function_overhead_words + setup + body;
  metrics.cycles = machine.function_overhead_words + setup +
                   body * kernel.iterations();
  return metrics;
}

CodeMetrics baseline_metrics(const ir::Kernel& kernel,
                             const MachineModel& machine) {
  const std::int64_t accesses =
      static_cast<std::int64_t>(kernel.accesses().size());
  const std::int64_t body =
      shared_body_words(kernel) +
      accesses * machine.baseline_address_words_per_access +
      machine.loop_control_words;
  CodeMetrics metrics;
  metrics.size_words = machine.function_overhead_words + body;
  metrics.cycles =
      machine.function_overhead_words + body * kernel.iterations();
  return metrics;
}

namespace {

AddressingComparison finalize(AddressingComparison comparison) {
  comparison.size_reduction_percent = support::percent_reduction(
      static_cast<double>(comparison.baseline.size_words),
      static_cast<double>(comparison.optimized.size_words));
  comparison.speed_reduction_percent = support::percent_reduction(
      static_cast<double>(comparison.baseline.cycles),
      static_cast<double>(comparison.optimized.cycles));
  return comparison;
}

}  // namespace

AddressingComparison compare_addressing(const ir::Kernel& kernel,
                                        const core::ProblemConfig& config,
                                        const MachineModel& machine) {
  const ir::AccessSequence seq = ir::lower(kernel);
  const core::Allocation allocation =
      core::RegisterAllocator(config).run(seq);
  return compare_addressing(kernel, allocation, machine);
}

AddressingComparison compare_addressing(const ir::Kernel& kernel,
                                        const core::Allocation& allocation,
                                        const MachineModel& machine) {
  AddressingComparison comparison;
  comparison.baseline = baseline_metrics(kernel, machine);
  comparison.optimized = optimized_metrics(kernel, allocation, machine);
  return finalize(comparison);
}

AddressingComparison compare_addressing(const ir::Application& app,
                                        const core::ProblemConfig& config,
                                        const MachineModel& machine) {
  AddressingComparison total;
  for (const ir::Kernel& kernel : app.kernels()) {
    const AddressingComparison part =
        compare_addressing(kernel, config, machine);
    total.baseline.size_words += part.baseline.size_words;
    total.baseline.cycles += part.baseline.cycles;
    total.optimized.size_words += part.optimized.size_words;
    total.optimized.cycles += part.optimized.cycles;
  }
  return finalize(total);
}

}  // namespace dspaddr::agu
