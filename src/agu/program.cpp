#include "agu/program.hpp"

#include <sstream>

namespace dspaddr::agu {

const char* to_string(Opcode op) {
  switch (op) {
    case Opcode::kLdar:
      return "LDAR";
    case Opcode::kAdar:
      return "ADAR";
    case Opcode::kUse:
      return "USE";
    case Opcode::kReload:
      return "RELOAD";
    case Opcode::kLdmr:
      return "LDMR";
  }
  return "?";
}

const char* to_string(Addressing addressing) {
  switch (addressing) {
    case Addressing::kPostModify:
      return "post";
    case Addressing::kPreModify:
      return "pre";
  }
  return "?";
}

std::string Instruction::to_string() const {
  std::ostringstream out;
  out << dspaddr::agu::to_string(op)
      << (op == Opcode::kLdmr ? " MR" : " AR") << reg;
  switch (op) {
    case Opcode::kLdar:
    case Opcode::kAdar:
    case Opcode::kLdmr:
      out << ", #" << value;
      break;
    case Opcode::kUse:
      out << "  ; a_" << (access + 1);
      if (mr >= 0) {
        out << ", post-modify +MR" << mr;
      } else if (value != 0) {
        out << ", post-modify " << (value > 0 ? "+" : "") << value;
      }
      break;
    case Opcode::kReload:
      out << ", &a_" << (access + 1)
          << (next_iteration ? " (next iteration)" : "");
      break;
  }
  return out.str();
}

namespace {

std::size_t address_words(const std::vector<Instruction>& instructions) {
  std::size_t words = 0;
  for (const Instruction& instruction : instructions) {
    if (instruction.op != Opcode::kUse) ++words;
  }
  return words;
}

}  // namespace

std::size_t Program::setup_address_words() const {
  return address_words(setup);
}

std::size_t Program::body_address_words() const {
  return address_words(body);
}

std::string Program::to_string() const {
  std::ostringstream out;
  if (addressing == Addressing::kPreModify) {
    out << "; pre-modify addressing\n";
  }
  out << "; setup\n";
  for (const Instruction& instruction : setup) {
    out << "  " << instruction.to_string() << '\n';
  }
  out << "; loop body\n";
  for (const Instruction& instruction : body) {
    out << "  " << instruction.to_string() << '\n';
  }
  return out.str();
}

}  // namespace dspaddr::agu
