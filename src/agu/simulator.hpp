// Cycle-level AGU simulator.
//
// Replays an address program for a number of loop iterations, tracking
// the address-register file. Every USE is checked against the address
// the access sequence demands at that iteration
// (offset + iteration * stride); this validates the whole pipeline —
// cost model, allocator, code generator — end to end, and the
// instruction counters validate the analytic cost claims
// (extra address instructions per iteration == allocation cost).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "agu/program.hpp"
#include "ir/access_sequence.hpp"

namespace dspaddr::agu {

/// Outcome of one simulation run.
struct SimResult {
  /// Every USE observed the demanded address.
  bool verified = true;
  /// First mismatch, when !verified.
  std::string failure;

  std::uint64_t iterations = 0;
  std::uint64_t accesses_executed = 0;
  /// LDARs executed (setup).
  std::uint64_t setup_instructions = 0;
  /// ADAR + RELOAD executed in the body across all iterations; per
  /// iteration this equals the allocation's analytic cost under the
  /// cyclic wrap policy.
  std::uint64_t extra_instructions = 0;
  /// Total cycles: setup + per-iteration (uses ride on data ops and are
  /// not charged here; ADAR/RELOAD cost one cycle each).
  std::uint64_t address_cycles = 0;

  /// Addresses observed by each USE in execution order (only filled
  /// when Simulator::Options::record_trace).
  std::vector<std::int64_t> trace;
};

/// The end-to-end acceptance predicate shared by the machine runner,
/// the CLI pipeline and the batch runner: every address verified AND
/// the executed extra instructions match the analytic per-iteration
/// cost (`residual_cost` after modify-register planning).
inline bool verified_against_cost(const SimResult& sim,
                                  std::uint64_t iterations,
                                  int residual_cost) {
  return sim.verified &&
         sim.extra_instructions ==
             iterations * static_cast<std::uint64_t>(residual_cost);
}

/// Executes address programs against the demands of an access sequence.
class Simulator {
public:
  struct Options {
    bool record_trace = false;
    /// Stop at the first verification failure (otherwise keep counting).
    bool stop_on_failure = true;
  };

  Simulator() = default;
  explicit Simulator(Options options) : options_(options) {}

  /// Runs `program` for `iterations` iterations of the loop over `seq`.
  SimResult run(const Program& program, const ir::AccessSequence& seq,
                std::uint64_t iterations) const;

private:
  Options options_;
};

}  // namespace dspaddr::agu
