// The AGU instruction set and address-program representation.
//
// The model follows the paper's cost semantics for DSP address
// generation units:
//  * LDAR  ARr, #imm  — load an address register (one word / one cycle;
//                       used for before-loop setup).
//  * ADAR  ARr, #imm  — add an immediate to an address register: the
//                       "one extra instruction" of a unit-cost address
//                       computation (one word / one cycle).
//  * USE   ARr, +d    — the addressing part of a data instruction: the
//                       memory operand is *(ARr), post-modified by d
//                       with |d| <= M in parallel to the data path
//                       (zero additional words / cycles).
//  * RELOAD ARr, a_k  — recompute the register to the address of access
//                       a_k (used when consecutive accesses have
//                       different strides so no constant modify exists;
//                       one word / one cycle, like ADAR through a modify
//                       register).
//  * LDMR  MRm, #imm  — load a modify register (setup; one word / one
//                       cycle). A USE carrying an `mr` index
//                       post-modifies its address register by that MR's
//                       contents in parallel — free for any distance
//                       (the modify-register extension, see
//                       core/modify_registers.hpp).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace dspaddr::agu {

enum class Opcode {
  kLdar,
  kAdar,
  kUse,
  kReload,
  kLdmr,
};

/// When a USE's modify takes effect relative to its memory operand.
/// Post-modify is the paper's model (modify after the access); machines
/// like ARM's pre-indexed forms apply the modify first, so the register
/// holds the *previous* address between accesses.
enum class Addressing {
  kPostModify,
  kPreModify,
};

const char* to_string(Addressing addressing);

const char* to_string(Opcode op);

/// One AGU instruction. Field meaning by opcode:
///   kLdar:   reg <- value
///   kAdar:   reg <- reg + value
///   kUse:    memory operand at reg for access `access`, then
///            reg <- reg + value (|value| <= M), or reg <- reg + MR[mr]
///            when mr >= 0
///   kReload: reg <- address of access `access` (in the next iteration
///            when `next_iteration`), value unused
///   kLdmr:   MR[reg] <- value
struct Instruction {
  Opcode op = Opcode::kUse;
  std::size_t reg = 0;
  std::int64_t value = 0;
  /// Access index this instruction addresses (kUse / kReload).
  std::size_t access = 0;
  /// kReload only: target the access's address in iteration t+1.
  bool next_iteration = false;
  /// kUse only: post-modify through this modify register (-1 = none).
  std::int32_t mr = -1;

  std::string to_string() const;

  friend bool operator==(const Instruction& a, const Instruction& b) {
    return a.op == b.op && a.reg == b.reg && a.value == b.value &&
           a.access == b.access && a.next_iteration == b.next_iteration &&
           a.mr == b.mr;
  }
  friend bool operator!=(const Instruction& a, const Instruction& b) {
    return !(a == b);
  }
};

/// Address program of one loop: setup runs once, body once per
/// iteration.
struct Program {
  std::vector<Instruction> setup;
  std::vector<Instruction> body;
  std::size_t register_count = 0;
  std::size_t modify_register_count = 0;
  /// Whether a USE's modify applies before or after the access.
  Addressing addressing = Addressing::kPostModify;

  /// Words occupied by explicit address instructions (kUse is free —
  /// its addressing rides on the data instruction encoding).
  std::size_t setup_address_words() const;
  std::size_t body_address_words() const;

  std::string to_string() const;
};

}  // namespace dspaddr::agu
