// Code-size / execution-time model for whole kernels (experiment T2).
//
// The paper cites (from Liem et al. [1]) improvements of up to 30 % in
// code size and 60 % in speed for optimized array index computation
// versus code from a regular C compiler. We reproduce the *shape* of
// that claim with a single-issue DSP model (1 instruction = 1 word =
// 1 cycle):
//
//   * a "regular C compiler" recomputes every array address explicitly
//     (`baseline_address_words_per_access` words per access, per
//     iteration) and uses no post-modify addressing;
//   * optimized code pays only the allocation's unit-cost address
//     computations (ADAR/RELOAD) per iteration plus one LDAR per
//     register before the loop.
//
// Both versions share the data-path operations, one word per memory
// operand, the loop control word and the fixed function overhead, so
// all differences come from address computation — exactly the quantity
// the paper optimizes. Code size includes the one-time overhead (which
// dilutes the size gain) while cycles are dominated by the loop body
// (which amplifies the speed gain): the 30-vs-60 asymmetry of [1]
// emerges naturally.
#pragma once

#include <cstdint>

#include "core/allocator.hpp"
#include "ir/application.hpp"
#include "ir/kernel.hpp"
#include "ir/layout.hpp"

namespace dspaddr::agu {

/// Parameters of the single-issue DSP used by the model.
struct MachineModel {
  /// Prologue/epilogue, register save, loop setup.
  std::int64_t function_overhead_words = 10;
  /// Decrement-and-branch per iteration.
  std::int64_t loop_control_words = 1;
  /// Address computation words a regular C compiler spends per access.
  std::int64_t baseline_address_words_per_access = 2;
};

/// Static code size and dynamic cycle count of one kernel build.
struct CodeMetrics {
  std::int64_t size_words = 0;
  std::int64_t cycles = 0;
};

/// Metrics for the kernel compiled with AGU-optimized addressing under
/// `allocation` (which must stem from the kernel's lowered sequence).
CodeMetrics optimized_metrics(const ir::Kernel& kernel,
                              const core::Allocation& allocation,
                              const MachineModel& machine = {});

/// Metrics for the kernel compiled naively (explicit address
/// recomputation per access).
CodeMetrics baseline_metrics(const ir::Kernel& kernel,
                             const MachineModel& machine = {});

/// Side-by-side comparison for one kernel and allocator configuration.
struct AddressingComparison {
  CodeMetrics baseline;
  CodeMetrics optimized;
  double size_reduction_percent = 0.0;
  double speed_reduction_percent = 0.0;
};

/// Lowers the kernel, allocates with `config`, and compares both builds.
AddressingComparison compare_addressing(const ir::Kernel& kernel,
                                        const core::ProblemConfig& config,
                                        const MachineModel& machine = {});

/// Same comparison reusing an allocation the caller already computed
/// (which must stem from the kernel's lowered sequence).
AddressingComparison compare_addressing(const ir::Kernel& kernel,
                                        const core::Allocation& allocation,
                                        const MachineModel& machine = {});

/// Whole-program comparison: per-loop allocation (address registers are
/// reassigned between loops), sizes and cycles summed over all kernels
/// of the application. This is the granularity at which Liem et al. [1]
/// report the 30 % / 60 % improvements.
AddressingComparison compare_addressing(const ir::Application& app,
                                        const core::ProblemConfig& config,
                                        const MachineModel& machine = {});

}  // namespace dspaddr::agu
