// The zero-cost / unit-cost partitioning of address computations
// (paper section 2).
//
// An AGU post-modify by distance d executes in parallel with the data
// path iff d lies in the machine's free modify window; any longer move
// costs one extra instruction. The cost of handling two accesses
// consecutively in the same address register is therefore 0 or 1.
//
// The paper's model is the symmetric window |d| <= M. Real AGUs are
// richer: some only post-increment (window [0, M]), some reach further
// forward than backward, and many add dedicated auto-inc/dec widths
// (e.g. a free *(p++2) on word machines) outside the contiguous
// window. CostModel therefore carries an asymmetric window [lo, hi]
// with 0 inside it, plus a sorted list of extra free widths; the
// paper's M becomes the symmetric special case [-M, M].
//
// Two wrap policies are provided (see DESIGN.md section 1):
//  * kCyclic  (default): the transition from a register's last access in
//    iteration t to its first access in iteration t+1 is charged too —
//    the true steady-state loop cost.
//  * kAcyclic: only intra-iteration transitions are charged — the model
//    under which the minimum path cover is exactly solvable in
//    polynomial time via bipartite matching (Araujo-style bound [2]).
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "ir/access_sequence.hpp"

namespace dspaddr::core {

enum class WrapPolicy {
  kCyclic,
  kAcyclic,
};

/// AGU cost parameters: the free modify window [lo, hi], extra free
/// auto-inc/dec widths, and the wrap policy.
class CostModel {
 public:
  CostModel() = default;

  /// The paper's symmetric model: free iff |d| <= modify_range.
  /// Keeps `CostModel{m, wrap}` call sites working unchanged.
  explicit CostModel(std::int64_t modify_range,
                     WrapPolicy wrap_policy = WrapPolicy::kCyclic)
      : modify_lo(-modify_range), modify_hi(modify_range), wrap(wrap_policy) {}

  /// Full asymmetric model with dedicated free widths.
  CostModel(std::int64_t lo, std::int64_t hi,
            std::vector<std::int64_t> widths,
            WrapPolicy wrap_policy = WrapPolicy::kCyclic)
      : modify_lo(lo), modify_hi(hi), free_widths(std::move(widths)),
        wrap(wrap_policy) {
    std::sort(free_widths.begin(), free_widths.end());
    free_widths.erase(std::unique(free_widths.begin(), free_widths.end()),
                      free_widths.end());
  }

  /// Lower bound of the free window (<= 0 when valid).
  std::int64_t modify_lo = -1;
  /// Upper bound of the free window (>= 0 when valid).
  std::int64_t modify_hi = 1;
  /// Extra free signed widths outside [lo, hi], sorted ascending.
  std::vector<std::int64_t> free_widths;
  WrapPolicy wrap = WrapPolicy::kCyclic;

  /// A window is valid iff it contains 0 (staying put is always free).
  bool valid() const { return modify_lo <= 0 && 0 <= modify_hi; }

  /// True iff a post-modify by `distance` is free on this machine.
  bool free_distance(std::int64_t distance) const {
    if (modify_lo <= distance && distance <= modify_hi) return true;
    return std::binary_search(free_widths.begin(), free_widths.end(),
                              distance);
  }

  /// The magnitude M shown in K/L/M summaries: the furthest reach of
  /// the contiguous window. Equals the paper's M for symmetric models.
  std::int64_t modify_range() const {
    return std::max(-modify_lo, modify_hi);
  }

  friend bool operator==(const CostModel& a, const CostModel& b) {
    return a.modify_lo == b.modify_lo && a.modify_hi == b.modify_hi &&
           a.free_widths == b.free_widths && a.wrap == b.wrap;
  }
  friend bool operator!=(const CostModel& a, const CostModel& b) {
    return !(a == b);
  }
};

/// Cost (0 or 1) of access `q` directly following access `p` within one
/// iteration in the same address register; `p` must precede `q` in the
/// sequence order (not checked here — enforced by Path).
int intra_transition_cost(const ir::AccessSequence& seq, std::size_t p,
                          std::size_t q, const CostModel& model);

/// Cost (0 or 1) of access `first` (iteration t+1) directly following
/// access `last` (iteration t) in the same register. Always 0 under
/// WrapPolicy::kAcyclic.
int wrap_transition_cost(const ir::AccessSequence& seq, std::size_t last,
                         std::size_t first, const CostModel& model);

/// True iff the intra-iteration transition p -> q is free.
bool intra_zero_cost(const ir::AccessSequence& seq, std::size_t p,
                     std::size_t q, const CostModel& model);

/// True iff the iteration-boundary transition last -> first is free
/// (trivially true under kAcyclic).
bool wrap_zero_cost(const ir::AccessSequence& seq, std::size_t last,
                    std::size_t first, const CostModel& model);

}  // namespace dspaddr::core
