// The zero-cost / unit-cost partitioning of address computations
// (paper section 2).
//
// An AGU post-modify by distance d executes in parallel with the data
// path iff |d| <= M (the maximum modify range); any longer move costs
// one extra instruction. The cost of handling two accesses
// consecutively in the same address register is therefore 0 or 1.
//
// Two wrap policies are provided (see DESIGN.md section 1):
//  * kCyclic  (default): the transition from a register's last access in
//    iteration t to its first access in iteration t+1 is charged too —
//    the true steady-state loop cost.
//  * kAcyclic: only intra-iteration transitions are charged — the model
//    under which the minimum path cover is exactly solvable in
//    polynomial time via bipartite matching (Araujo-style bound [2]).
#pragma once

#include <cstdint>

#include "ir/access_sequence.hpp"

namespace dspaddr::core {

enum class WrapPolicy {
  kCyclic,
  kAcyclic,
};

/// AGU cost parameters: the modify range M and the wrap policy.
struct CostModel {
  /// Maximum distance reachable by a free post-modify (M >= 0).
  std::int64_t modify_range = 1;
  WrapPolicy wrap = WrapPolicy::kCyclic;

  friend bool operator==(const CostModel& a, const CostModel& b) {
    return a.modify_range == b.modify_range && a.wrap == b.wrap;
  }
  friend bool operator!=(const CostModel& a, const CostModel& b) {
    return !(a == b);
  }
};

/// Cost (0 or 1) of access `q` directly following access `p` within one
/// iteration in the same address register; `p` must precede `q` in the
/// sequence order (not checked here — enforced by Path).
int intra_transition_cost(const ir::AccessSequence& seq, std::size_t p,
                          std::size_t q, const CostModel& model);

/// Cost (0 or 1) of access `first` (iteration t+1) directly following
/// access `last` (iteration t) in the same register. Always 0 under
/// WrapPolicy::kAcyclic.
int wrap_transition_cost(const ir::AccessSequence& seq, std::size_t last,
                         std::size_t first, const CostModel& model);

/// True iff the intra-iteration transition p -> q is free.
bool intra_zero_cost(const ir::AccessSequence& seq, std::size_t p,
                     std::size_t q, const CostModel& model);

/// True iff the iteration-boundary transition last -> first is free
/// (trivially true under kAcyclic).
bool wrap_zero_cost(const ir::AccessSequence& seq, std::size_t last,
                    std::size_t first, const CostModel& model);

}  // namespace dspaddr::core
