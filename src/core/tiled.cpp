#include "core/tiled.hpp"

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <limits>
#include <vector>

#include "core/exact.hpp"
#include "core/validate.hpp"
#include "support/check.hpp"

namespace dspaddr::core {

namespace {

using Clock = std::chrono::steady_clock;

constexpr std::size_t kUnassigned = std::numeric_limits<std::size_t>::max();

/// Number of fixed-width windows covering [0, n): each starts
/// `overlap` before its predecessor's end, so the last window always
/// owns at least one fresh access. The budget splitter needs the
/// total before the sweep starts.
std::size_t count_fixed_windows(std::size_t n, std::size_t width,
                                std::size_t overlap) {
  std::size_t windows = 1;
  std::size_t end = std::min(width, n);
  while (end < n) {
    end = std::min(end - overlap + width, n);
    ++windows;
  }
  return windows;
}

}  // namespace

TiledResult tiled_min_cost_allocation(const ir::AccessSequence& seq,
                                      const CostModel& model,
                                      std::size_t registers,
                                      const TiledOptions& options) {
  check_arg(registers >= 1,
            "tiled_min_cost_allocation: need at least one register");
  check_arg(options.tile_width >= 2,
            "tiled_min_cost_allocation: tile width must be >= 2");
  check_arg(options.tile_overlap < options.tile_width,
            "tiled_min_cost_allocation: tile overlap must be smaller "
            "than the tile width");
  check_arg(!options.auto_width || options.max_width >= options.min_width,
            "tiled_min_cost_allocation: auto-width bounds must satisfy "
            "min_width <= max_width");

  TiledResult result;
  if (seq.empty()) {
    result.proven = true;
    return result;
  }

  const std::size_t n = seq.size();
  const std::size_t overlap = options.tile_overlap;
  // Auto-tuning bounds, clamped so every window keeps at least two
  // fresh accesses beyond the pinned overlap.
  const std::size_t min_width =
      std::max(options.min_width, overlap + 2);
  const std::size_t max_width = std::max(options.max_width, min_width);
  std::size_t width = options.auto_width
                          ? std::clamp(options.tile_width, min_width,
                                       max_width)
                          : options.tile_width;

  // A single window is the full problem: solve it under the real model
  // and the proof (or gap) passes through unchanged. Decided from the
  // starting width — the auto-tuner only re-sizes *subsequent*
  // windows, so the decision is stable.
  const bool single_window = width >= n;
  CostModel window_model = model;
  if (!single_window) {
    // Wrap costs are meaningless mid-sequence — every register keeps
    // running into the next window — so windows use the acyclic
    // relaxation; the real wrap costs are paid once on the assembled
    // global paths below.
    window_model.wrap = WrapPolicy::kAcyclic;
  }

  // Fixed-width sweeps split the node budget evenly over the (known)
  // window count; the auto sweep cannot know the count up front, so
  // it splits what remains over the *estimated* remaining windows at
  // the current width.
  const std::size_t fixed_total =
      options.auto_width ? 0 : count_fixed_windows(n, width, overlap);

  std::vector<std::size_t> global_assignment(seq.size(), kUnassigned);
  std::vector<bool> global_used(registers, false);
  std::vector<std::size_t> global_last(registers, 0);
  const Clock::time_point sweep_start = Clock::now();
  // Measured search throughput (EMA over solved windows), used to
  // translate the next window's wall slice into affordable nodes.
  double nodes_per_ms = 0.0;

  std::size_t begin = 0;
  bool last_window = false;
  while (!last_window) {
    const std::size_t end = std::min(begin + width, n);
    last_window = end == n;
    const std::size_t window_overlap = begin == 0 ? 0 : overlap;
    const std::size_t len = end - begin;
    const std::size_t windows_left =
        options.auto_width
            ? 1 + (last_window
                       ? 0
                       : (n - end + (width - overlap) - 1) /
                             (width - overlap))
            : fixed_total - result.windows;
    ++result.windows;
    result.window_widths.push_back(len);

    std::vector<ir::Access> accesses;
    accesses.reserve(len);
    for (std::size_t i = begin; i < end; ++i) {
      accesses.push_back(seq[i]);
    }
    const ir::AccessSequence sub_seq(std::move(accesses));

    // Pin the overlap to the predecessor's choices, canonicalized by
    // first appearance so the pin obeys the search's fresh rule. The
    // canon map doubles as the local -> global register mapping.
    std::vector<std::size_t> local_to_global;
    std::vector<std::size_t> pinned;
    pinned.reserve(window_overlap);
    for (std::size_t i = begin; i < begin + window_overlap; ++i) {
      const std::size_t global = global_assignment[i];
      std::size_t local = local_to_global.size();
      for (std::size_t g = 0; g < local_to_global.size(); ++g) {
        if (local_to_global[g] == global) {
          local = g;
          break;
        }
      }
      if (local == local_to_global.size()) {
        local_to_global.push_back(global);
      }
      pinned.push_back(local);
    }

    ExactOptions exact_options;
    exact_options.max_nodes =
        options.auto_width
            ? std::max<std::uint64_t>(
                  (options.max_nodes -
                   std::min(options.max_nodes, result.nodes)) /
                      windows_left,
                  1)
            : std::max<std::uint64_t>(options.max_nodes / fixed_total, 1);
    exact_options.jobs = options.jobs;
    exact_options.steal_grain = options.steal_grain;
    exact_options.pinned_prefix = pinned;
    exact_options.abort = options.abort;
    if (options.time_budget_ms > 0) {
      const std::int64_t elapsed_ms =
          std::chrono::duration_cast<std::chrono::milliseconds>(
              Clock::now() - sweep_start)
              .count();
      const std::int64_t remaining_ms =
          std::max<std::int64_t>(options.time_budget_ms - elapsed_ms, 1);
      exact_options.time_budget_ms = std::max<std::int64_t>(
          remaining_ms / static_cast<std::int64_t>(windows_left), 1);
    }

    const Clock::time_point solve_start = Clock::now();
    const ExactResult window_result = exact_min_cost_allocation(
        sub_seq, window_model, registers, exact_options);
    result.nodes += window_result.nodes;
    result.table_cap_hits += window_result.table_cap_hits;
    result.subtree_tasks += window_result.subtree_tasks;
    result.steals += window_result.steals;
    result.steal_attempts += window_result.steal_attempts;
    result.splits += window_result.splits;
    result.worker_busy_us += window_result.worker_busy_us;
    if (window_result.proven) ++result.windows_proven;
    result.window_gap_total += window_result.gap();
    result.external_abort |= window_result.external_abort;

    // Local register r owns result.paths[r]: the solver groups accesses
    // by register index and the fresh rule keeps used indices
    // contiguous, so no path is ever empty below the highest one.
    std::vector<std::size_t> local_assignment(len, kUnassigned);
    for (std::size_t r = 0; r < window_result.paths.size(); ++r) {
      for (std::size_t i = 0; i < window_result.paths[r].size(); ++i) {
        local_assignment[window_result.paths[r][i]] = r;
      }
    }

    // Stitch registers the window opened beyond the pinned set onto
    // globally cheapest physical registers: an unused register joins
    // for free, a used one pays the (0/1) transition from its last
    // committed access — evaluated on the full sequence under the real
    // model. Each window maps locals to distinct globals, so the
    // window-internal optimality is preserved verbatim.
    for (std::size_t local = local_to_global.size();
         local < window_result.paths.size(); ++local) {
      const std::size_t first_access =
          begin + window_result.paths[local][0];
      int best_cost = std::numeric_limits<int>::max();
      std::size_t best_global = kUnassigned;
      for (std::size_t g = 0; g < registers; ++g) {
        if (std::find(local_to_global.begin(), local_to_global.end(), g) !=
            local_to_global.end()) {
          continue;
        }
        const int cost =
            global_used[g] ? intra_transition_cost(seq, global_last[g],
                                                   first_access, model)
                           : 0;
        if (cost < best_cost) {
          best_cost = cost;
          best_global = g;
          if (cost == 0) break;
        }
      }
      check_invariant(best_global != kUnassigned,
                      "tiled_min_cost_allocation: window used more "
                      "registers than available");
      local_to_global.push_back(best_global);
    }

    for (std::size_t i = begin + window_overlap; i < end; ++i) {
      global_assignment[i] = local_to_global[local_assignment[i - begin]];
    }
    for (std::size_t i = begin; i < end; ++i) {
      global_used[global_assignment[i]] = true;
      global_last[global_assignment[i]] = i;
    }

    // Auto-tuning: re-size the next window from this one's measured
    // effort. An unproven window was too ambitious — narrow ~33%. A
    // proven window that used under a quarter of what the next window
    // can afford (its node slice, further capped by what the measured
    // nodes/ms says fits in a wall slice) leaves headroom — widen
    // ~50%. In between, hold.
    if (options.auto_width && !last_window) {
      if (options.time_budget_ms > 0) {
        const double solve_ms = std::max(
            1.0, std::chrono::duration<double, std::milli>(Clock::now() -
                                                           solve_start)
                     .count());
        const double measured =
            static_cast<double>(std::max<std::uint64_t>(
                window_result.nodes, 1)) /
            solve_ms;
        nodes_per_ms =
            nodes_per_ms == 0.0 ? measured
                                : 0.5 * nodes_per_ms + 0.5 * measured;
      }
      if (!window_result.proven) {
        width = std::max(min_width, width - std::max<std::size_t>(
                                                width / 3, 1));
      } else {
        std::uint64_t affordable = exact_options.max_nodes;
        if (nodes_per_ms > 0.0 && exact_options.time_budget_ms > 0) {
          affordable = std::min(
              affordable,
              static_cast<std::uint64_t>(
                  nodes_per_ms *
                  static_cast<double>(exact_options.time_budget_ms)));
        }
        if (window_result.nodes * 4 <= affordable) {
          width = std::min(max_width, width + std::max<std::size_t>(
                                                  width / 2, 1));
        }
      }
    }

    begin = end - (last_window ? 0 : overlap);
  }

  std::vector<std::vector<std::size_t>> groups(registers);
  for (std::size_t i = 0; i < seq.size(); ++i) {
    groups[global_assignment[i]].push_back(i);
  }
  for (auto& group : groups) {
    if (!group.empty()) result.paths.emplace_back(std::move(group));
  }
  validate_allocation(seq, result.paths, registers);
  result.cost = total_cost(seq, result.paths, model);
  result.proven = single_window && result.windows_proven == 1;
  return result;
}

}  // namespace dspaddr::core
