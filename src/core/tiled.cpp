#include "core/tiled.hpp"

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <limits>
#include <vector>

#include "core/exact.hpp"
#include "core/validate.hpp"
#include "support/check.hpp"

namespace dspaddr::core {

namespace {

using Clock = std::chrono::steady_clock;

constexpr std::size_t kUnassigned = std::numeric_limits<std::size_t>::max();

struct Window {
  std::size_t begin = 0;
  std::size_t end = 0;
  std::size_t overlap = 0;  ///< leading accesses pinned by the predecessor
};

/// Overlapping windows covering [0, n): each starts `tile_overlap`
/// before its predecessor's end, so the last window always owns at
/// least one fresh access.
std::vector<Window> make_windows(std::size_t n, std::size_t width,
                                 std::size_t overlap) {
  std::vector<Window> windows;
  std::size_t begin = 0;
  while (true) {
    const std::size_t end = std::min(begin + width, n);
    windows.push_back(Window{begin, end, windows.empty() ? 0 : overlap});
    if (end == n) break;
    begin = end - overlap;
  }
  return windows;
}

}  // namespace

TiledResult tiled_min_cost_allocation(const ir::AccessSequence& seq,
                                      const CostModel& model,
                                      std::size_t registers,
                                      const TiledOptions& options) {
  check_arg(registers >= 1,
            "tiled_min_cost_allocation: need at least one register");
  check_arg(options.tile_width >= 2,
            "tiled_min_cost_allocation: tile width must be >= 2");
  check_arg(options.tile_overlap < options.tile_width,
            "tiled_min_cost_allocation: tile overlap must be smaller "
            "than the tile width");

  TiledResult result;
  if (seq.empty()) {
    result.proven = true;
    return result;
  }

  const std::vector<Window> windows =
      make_windows(seq.size(), options.tile_width, options.tile_overlap);
  result.windows = windows.size();

  // A single window is the full problem: solve it under the real model
  // and the proof (or gap) passes through unchanged.
  const bool single_window = windows.size() == 1;
  CostModel window_model = model;
  if (!single_window) {
    // Wrap costs are meaningless mid-sequence — every register keeps
    // running into the next window — so windows use the acyclic
    // relaxation; the real wrap costs are paid once on the assembled
    // global paths below.
    window_model.wrap = WrapPolicy::kAcyclic;
  }

  std::vector<std::size_t> global_assignment(seq.size(), kUnassigned);
  std::vector<bool> global_used(registers, false);
  std::vector<std::size_t> global_last(registers, 0);
  const std::uint64_t nodes_per_window =
      std::max<std::uint64_t>(options.max_nodes / windows.size(), 1);
  const Clock::time_point sweep_start = Clock::now();

  for (std::size_t w = 0; w < windows.size(); ++w) {
    const Window& window = windows[w];
    const std::size_t len = window.end - window.begin;

    std::vector<ir::Access> accesses;
    accesses.reserve(len);
    for (std::size_t i = window.begin; i < window.end; ++i) {
      accesses.push_back(seq[i]);
    }
    const ir::AccessSequence sub_seq(std::move(accesses));

    // Pin the overlap to the predecessor's choices, canonicalized by
    // first appearance so the pin obeys the search's fresh rule. The
    // canon map doubles as the local -> global register mapping.
    std::vector<std::size_t> local_to_global;
    std::vector<std::size_t> pinned;
    pinned.reserve(window.overlap);
    for (std::size_t i = window.begin; i < window.begin + window.overlap;
         ++i) {
      const std::size_t global = global_assignment[i];
      std::size_t local = local_to_global.size();
      for (std::size_t g = 0; g < local_to_global.size(); ++g) {
        if (local_to_global[g] == global) {
          local = g;
          break;
        }
      }
      if (local == local_to_global.size()) {
        local_to_global.push_back(global);
      }
      pinned.push_back(local);
    }

    ExactOptions exact_options;
    exact_options.max_nodes = nodes_per_window;
    exact_options.jobs = options.jobs;
    exact_options.pinned_prefix = pinned;
    exact_options.abort = options.abort;
    if (options.time_budget_ms > 0) {
      const std::int64_t elapsed_ms =
          std::chrono::duration_cast<std::chrono::milliseconds>(
              Clock::now() - sweep_start)
              .count();
      const std::int64_t remaining_ms =
          std::max<std::int64_t>(options.time_budget_ms - elapsed_ms, 1);
      exact_options.time_budget_ms = std::max<std::int64_t>(
          remaining_ms / static_cast<std::int64_t>(windows.size() - w), 1);
    }

    const ExactResult window_result = exact_min_cost_allocation(
        sub_seq, window_model, registers, exact_options);
    result.nodes += window_result.nodes;
    result.table_cap_hits += window_result.table_cap_hits;
    result.subtree_tasks += window_result.subtree_tasks;
    if (window_result.proven) ++result.windows_proven;
    result.window_gap_total += window_result.gap();
    result.external_abort |= window_result.external_abort;

    // Local register r owns result.paths[r]: the solver groups accesses
    // by register index and the fresh rule keeps used indices
    // contiguous, so no path is ever empty below the highest one.
    std::vector<std::size_t> local_assignment(len, kUnassigned);
    for (std::size_t r = 0; r < window_result.paths.size(); ++r) {
      for (std::size_t i = 0; i < window_result.paths[r].size(); ++i) {
        local_assignment[window_result.paths[r][i]] = r;
      }
    }

    // Stitch registers the window opened beyond the pinned set onto
    // globally cheapest physical registers: an unused register joins
    // for free, a used one pays the (0/1) transition from its last
    // committed access — evaluated on the full sequence under the real
    // model. Each window maps locals to distinct globals, so the
    // window-internal optimality is preserved verbatim.
    for (std::size_t local = local_to_global.size();
         local < window_result.paths.size(); ++local) {
      const std::size_t first_access =
          window.begin + window_result.paths[local][0];
      int best_cost = std::numeric_limits<int>::max();
      std::size_t best_global = kUnassigned;
      for (std::size_t g = 0; g < registers; ++g) {
        if (std::find(local_to_global.begin(), local_to_global.end(), g) !=
            local_to_global.end()) {
          continue;
        }
        const int cost =
            global_used[g] ? intra_transition_cost(seq, global_last[g],
                                                   first_access, model)
                           : 0;
        if (cost < best_cost) {
          best_cost = cost;
          best_global = g;
          if (cost == 0) break;
        }
      }
      check_invariant(best_global != kUnassigned,
                      "tiled_min_cost_allocation: window used more "
                      "registers than available");
      local_to_global.push_back(best_global);
    }

    for (std::size_t i = window.begin + window.overlap; i < window.end;
         ++i) {
      global_assignment[i] =
          local_to_global[local_assignment[i - window.begin]];
    }
    for (std::size_t i = window.begin; i < window.end; ++i) {
      global_used[global_assignment[i]] = true;
      global_last[global_assignment[i]] = i;
    }
  }

  std::vector<std::vector<std::size_t>> groups(registers);
  for (std::size_t i = 0; i < seq.size(); ++i) {
    groups[global_assignment[i]].push_back(i);
  }
  for (auto& group : groups) {
    if (!group.empty()) result.paths.emplace_back(std::move(group));
  }
  validate_allocation(seq, result.paths, registers);
  result.cost = total_cost(seq, result.paths, model);
  result.proven = single_window && result.windows_proven == 1;
  return result;
}

}  // namespace dspaddr::core
