// Lower and upper bounds on K~, the minimum number of virtual address
// registers admitting a zero-cost allocation (paper section 3.1).
//
// * Lower bound: the minimum path cover of the intra-iteration zero-cost
//   DAG, computed exactly as N - (maximum bipartite matching) — the
//   technique of Araujo et al. [2]. Every zero-cost cover under the
//   cyclic model is in particular a path cover of that DAG, so its size
//   is bounded below by this value.
// * Upper bound: a greedy sweep that appends each access to the
//   zero-cost-compatible open path with the nearest endpoint, followed
//   by a split-repair pass that restores zero wrap cost. The result is a
//   valid zero-cost cover (hence an upper bound on K~) whenever one
//   exists.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "core/access_graph.hpp"
#include "core/path.hpp"

namespace dspaddr::core {

/// Matching-based lower bound on K~ (exact minimum under kAcyclic).
std::size_t lower_bound_registers(const AccessGraph& graph);

/// The acyclic-optimal cover itself (used as the phase-2 starting point
/// when no zero-cost cyclic cover exists).
std::vector<Path> acyclic_optimal_cover(const AccessGraph& graph);

/// Greedy zero-cost cover; the size of the returned cover is an upper
/// bound on K~. Returns nullopt when the greedy cannot produce one —
/// only possible when some access has |stride| > M (singletons no longer
/// close for free); a zero-cost cover may still exist in that case and
/// the branch-and-bound search decides conclusively.
std::optional<std::vector<Path>> greedy_zero_cost_cover(
    const AccessGraph& graph);

}  // namespace dspaddr::core
