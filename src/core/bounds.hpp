// Lower and upper bounds on K~, the minimum number of virtual address
// registers admitting a zero-cost allocation (paper section 3.1), plus
// the admissible suffix bounds driving the phase-2 exact search.
//
// * Lower bound: the minimum path cover of the intra-iteration zero-cost
//   DAG, computed exactly as N - (maximum bipartite matching) — the
//   technique of Araujo et al. [2]. Every zero-cost cover under the
//   cyclic model is in particular a path cover of that DAG, so its size
//   is bounded below by this value.
// * Upper bound: a greedy sweep that appends each access to the
//   zero-cost-compatible open path with the nearest endpoint, followed
//   by a split-repair pass that restores zero wrap cost. The result is a
//   valid zero-cost cover (hence an upper bound on K~) whenever one
//   exists.
// * SuffixBounds: O(N^2) tables underestimating the cost still to be
//   paid by a partial phase-2 assignment — the cheapest-transition
//   relaxation per unassigned access and a wrap-cost floor per open
//   register.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "core/access_graph.hpp"
#include "core/path.hpp"

namespace dspaddr::core {

/// Matching-based lower bound on K~ (exact minimum under kAcyclic).
std::size_t lower_bound_registers(const AccessGraph& graph);

/// The acyclic-optimal cover itself (used as the phase-2 starting point
/// when no zero-cost cyclic cover exists).
std::vector<Path> acyclic_optimal_cover(const AccessGraph& graph);

/// Greedy zero-cost cover; the size of the returned cover is an upper
/// bound on K~. Returns nullopt when the greedy cannot produce one —
/// only possible when some access has |stride| > M (singletons no longer
/// close for free); a zero-cost cover may still exist in that case and
/// the branch-and-bound search decides conclusively.
std::optional<std::vector<Path>> greedy_zero_cost_cover(
    const AccessGraph& graph);

/// Admissible lower bounds on the remaining cost of a partial phase-2
/// assignment (accesses [from, N) still unassigned).
///
/// Two relaxations, both sound because they drop the same-register
/// coupling between decisions:
///  * every unassigned access must be *entered* either by opening a
///    fresh register (free) or by an intra transition from some earlier
///    access — charging each access its cheapest incoming transition,
///    minus one free entry per still-unused register, never
///    overestimates;
///  * every open register eventually wraps from its final access back to
///    its first — the cheapest wrap over "stop now" and every possible
///    future final access never overestimates.
/// The components are disjoint (intra transitions into unassigned
/// accesses vs. wrap transitions), so their sum is admissible too.
class SuffixBounds {
 public:
  /// Above this many accesses the O(N^2) tables are not built and every
  /// bound degrades to the trivial (still admissible) zero — the search
  /// then falls back to incumbent-only pruning instead of exhausting
  /// memory on instances it could never finish anyway.
  static constexpr std::size_t kDenseLimit = 512;

  SuffixBounds(const ir::AccessSequence& seq, const CostModel& model);

  /// False when the instance exceeded kDenseLimit and the trivial
  /// bounds are in effect.
  bool dense() const { return dense_; }

  /// Sum over unassigned accesses j in [from, N) of the cheapest
  /// incoming intra transition cost min_{p < j} cost(p -> j).
  int cheapest_incoming_suffix(std::size_t from) const;

  /// Lower bound on the eventual wrap cost of an open register whose
  /// path currently runs first .. last, when any subset of [from, N)
  /// may still be appended to it.
  int wrap_floor(std::size_t first, std::size_t last,
                 std::size_t from) const;

  /// Cached wrap_transition_cost(last -> first) (0 under the trivial
  /// bounds). The search caches this per open register so bound
  /// evaluation never touches the O(N^2) tables.
  int wrap_direct(std::size_t last, std::size_t first) const;

  /// One past the largest access j with wrap_direct(j, first) == 0 —
  /// costs are 0/1, so wrap_floor(first, last, from) is nonzero iff
  /// wrap_direct(last, first) != 0 and from >= this horizon. 0 when no
  /// zero-cost final access exists for `first`; SIZE_MAX under the
  /// trivial bounds (the floor is always 0 there).
  std::size_t wrap_zero_horizon(std::size_t first) const;

  /// Bound on the whole problem (the empty assignment) with `registers`
  /// registers available; a proven optimum can never be below this.
  int root_lower_bound(std::size_t registers) const;

 private:
  std::size_t n_ = 0;
  bool dense_ = true;
  /// suffix_incoming_[t] = sum_{j >= t} min_{p < j} cost(p -> j).
  std::vector<int> suffix_incoming_;
  /// wrap_direct_[l * n + f] = wrap cost of f following l.
  std::vector<int> wrap_direct_;
  /// wrap_suffix_min_[t * n + f] = min_{j >= t} wrap_direct_[j][f]
  /// (row t == n holds an INT_MAX empty-minimum sentinel).
  std::vector<int> wrap_suffix_min_;
  /// wrap_zero_horizon_[f] = 1 + max{j : wrap_direct_[j][f] == 0}, or
  /// 0 when no zero-cost final access exists.
  std::vector<std::size_t> wrap_zero_horizon_;
};

}  // namespace dspaddr::core
