// Exact minimum-cost allocation by branch-and-bound — the optimality
// oracle for the two-phase heuristic.
//
// The paper's heuristic decomposes the problem (zero-cost cover, then
// cost-guided merging); this module solves the original problem
// directly: over all partitions of the access sequence into at most K
// order-preserving subsequences, find one of minimum total cost under
// the cost model. Exponential in general (the paper notes phase 1 alone
// is exponential with inter-iteration dependencies), so intended for
// small N — property tests and the heuristic-quality study of
// bench_exact_gap use it as ground truth.
//
// Search shape: accesses are assigned in sequence order; a state is the
// (first, last, accumulated intra cost) triple per register. Symmetry
// is broken by only ever opening the lowest-numbered unused register,
// and branches are pruned when the accumulated cost (wrap costs are
// >= 0 and added at the end) reaches the incumbent.
#pragma once

#include <cstdint>
#include <vector>

#include "core/cost_model.hpp"
#include "core/path.hpp"
#include "ir/access_sequence.hpp"

namespace dspaddr::core {

struct ExactOptions {
  /// Hard cap on search nodes; hitting it degrades `proven` to false
  /// but keeps the best incumbent.
  std::uint64_t max_nodes = 50'000'000;
};

struct ExactResult {
  std::vector<Path> paths;
  int cost = 0;
  /// True when the search completed (the cost is provably minimal).
  bool proven = false;
  std::uint64_t nodes = 0;
};

/// Minimum-cost allocation of `seq` onto at most `registers` address
/// registers under `model`. `registers` must be >= 1.
ExactResult exact_min_cost_allocation(const ir::AccessSequence& seq,
                                      const CostModel& model,
                                      std::size_t registers,
                                      const ExactOptions& options = {});

}  // namespace dspaddr::core
