// Exact minimum-cost allocation by anytime branch-and-bound — the
// optimality oracle for the two-phase heuristic and the default phase-2
// solver for realistically sized kernels.
//
// The paper's heuristic decomposes the problem (zero-cost cover, then
// cost-guided merging); this module solves the original problem
// directly: over all partitions of the access sequence into at most K
// order-preserving subsequences, find one of minimum total cost under
// the cost model.
//
// Search shape: accesses are assigned in sequence order; a state is the
// (first, last) pair per register. The search itself is *flat*: an
// explicit frame stack over an arena of candidate moves replaces
// recursion, so a subtree can start from any pinned prefix — the
// mechanism behind both the parallel frontier fan-out and the tiled
// window solver (core/tiled.hpp). Four prunings keep the exponential
// tree tractable far beyond the old incumbent-only DFS:
//  * an admissible lower bound on the unassigned suffix
//    (core::SuffixBounds), maintained incrementally: each open register
//    caches its wrap cost and zero-wrap horizon, updated O(1) on
//    assign/undo, so bound evaluation never re-reads the O(N^2) tables;
//  * register symmetry breaking: only the lowest-numbered unused
//    register is ever opened, and extending a register whose (first,
//    last) accesses are value-identical (same offset and stride) to an
//    earlier register's is skipped — the subtrees are isomorphic;
//  * dominance pruning: a transposition table keyed on (next access,
//    per-register first/last states) cuts any branch that reaches an
//    already-seen state at no lower cost;
//  * move ordering: cheapest transition first, so good incumbents
//    appear early and the incumbent bound bites sooner.
// With `jobs > 1` the search runs on a work-stealing
// runtime::StealPool: one root task explores the tree, and whenever
// the pool reports hungry workers a busy searcher donates its
// shallowest untried subtree (as a pinned prefix, at least
// `steal_grain` accesses deep) onto its own deque for an idle worker
// to steal — so deep unbalanced trees keep every worker fed instead of
// idling after a one-shot frontier wave. All tasks share the atomic
// incumbent and a striped transposition table: the *cost* of the
// result (and the proof) is identical at any jobs level, while the
// witness assignment may differ among cost ties and node / steal /
// split counts vary with scheduling.
// The search is *anytime*: it is seeded with a greedy incumbent (or the
// caller's warm start), honors node and wall-clock budgets, and on
// abort returns the best incumbent with `proven == false` and the
// optimality gap against the root lower bound.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "core/cost_model.hpp"
#include "core/path.hpp"
#include "ir/access_sequence.hpp"

namespace dspaddr::core {

/// External cancellation for a search racing other work (the portfolio
/// engine, engine/portfolio.hpp). Both pointers are optional and read
/// with relaxed loads on the same ~1024-node cadence as the wall clock:
///  * `stop` — a shared kill switch; once true the search aborts and
///    returns its incumbent with `external_abort` set.
///  * `cost_bound` — the racing incumbent's cost. The search aborts as
///    soon as its proven lower bound *exceeds* the bound (strictly:
///    `lower_bound > *cost_bound`), because it can then never beat —
///    or even tie — a result someone else already has. The strict
///    comparison is what keeps portfolio winner selection
///    deterministic: a racer whose final cost ties the eventual
///    minimum is never bound-cancelled.
/// The pointed-to atomics must outlive the solve.
struct SearchAbortHook {
  const std::atomic<bool>* stop = nullptr;
  const std::atomic<int>* cost_bound = nullptr;

  bool armed() const { return stop != nullptr || cost_bound != nullptr; }

  /// True when the hook demands an abort for a search whose best
  /// proven lower bound is `lower_bound`.
  bool should_abort(int lower_bound) const {
    if (stop != nullptr && stop->load(std::memory_order_relaxed)) {
      return true;
    }
    return cost_bound != nullptr &&
           lower_bound > cost_bound->load(std::memory_order_relaxed);
  }
};

struct ExactOptions {
  /// Hard cap on search nodes; hitting it degrades `proven` to false
  /// but keeps the best incumbent. Shared across subtree tasks when
  /// `jobs > 1`.
  std::uint64_t max_nodes = 50'000'000;
  /// Wall-clock budget in milliseconds; 0 disables the clock. A timed
  /// abort keeps the best incumbent, like the node cap (but unlike it,
  /// makes results machine-dependent — leave at 0 when reproducibility
  /// matters). The clock is read every ~1024 nodes, not per node.
  std::int64_t time_budget_ms = 0;
  /// Suffix lower bounds (SuffixBounds). Off reproduces the legacy
  /// incumbent-only DFS, kept for A/B measurement in bench_exact_gap.
  bool use_bounds = true;
  /// Dominance pruning via the transposition table (auto-disabled for
  /// K > 8, where the fixed-size state key no longer fits).
  bool use_dominance = true;
  /// Worker threads of the search itself. 1 (the default) runs the
  /// exact sequential search; > 1 runs it on a work-stealing pool
  /// (runtime::StealPool) seeded with one root task that donates
  /// subtrees on demand. Proven costs are identical at any level; the
  /// witness assignment may differ among cost ties and node counts
  /// vary.
  std::size_t jobs = 1;
  /// Minimum unassigned-suffix length of a donated subtree: a busy
  /// worker only splits off subtrees that still have at least this
  /// many accesses to assign, so stolen tasks carry real work instead
  /// of scheduler overhead. 0 uses the built-in default (8). Only read
  /// when `jobs > 1`; any value yields the same proven cost.
  std::size_t steal_grain = 0;
  /// Transposition-table entry cap; 0 uses the built-in default
  /// (2^21). Lookups past the cap still prune (and are counted in
  /// ExactResult::table_cap_hits), only insertion stops.
  std::size_t table_cap = 0;
  /// Pin accesses [0, pinned_prefix.size()) to these registers and
  /// search only the completions. The pin must follow the fresh rule
  /// (register r first appears only after registers 0..r-1, i.e.
  /// first occurrences in increasing register order) so the state
  /// canonicalization stays valid. The reported cost includes the
  /// pinned transitions.
  std::vector<std::size_t> pinned_prefix;
  /// Optional warm-start incumbent: a valid allocation of the sequence
  /// onto at most `registers` registers (e.g. the two-phase heuristic's
  /// result) that agrees with `pinned_prefix`. The search then only
  /// explores improvements on it.
  std::vector<Path> warm_start;
  /// External cancellation (portfolio racing). Like the wall clock, an
  /// external abort keeps the best incumbent and degrades `proven`.
  SearchAbortHook abort;
};

struct ExactResult {
  std::vector<Path> paths;
  int cost = 0;
  /// True when the search completed (the cost is provably minimal;
  /// with a pinned prefix, minimal among its completions).
  bool proven = false;
  std::uint64_t nodes = 0;
  /// Best proven lower bound on the optimum: the cost itself when
  /// `proven`, otherwise the admissible root bound.
  int lower_bound = 0;
  /// Dominance lookups made while the transposition table was at its
  /// entry cap (insertion refused) — nonzero means a larger table
  /// could have pruned more.
  std::uint64_t table_cap_hits = 0;
  /// Tasks the work-stealing pool executed: the root task plus every
  /// donated subtree (0 for a sequential solve). Schedule-dependent at
  /// `jobs > 1` — donations happen exactly when workers go hungry —
  /// unlike the cost/proof, which never varies.
  std::uint64_t subtree_tasks = 0;
  /// Work-stealing diagnostics of a parallel solve, all exactly 0 at
  /// `jobs == 1` and schedule-dependent above it: subtrees donated by
  /// busy workers (`splits`), tasks idle workers took from a victim's
  /// deque (`steals`), and victim-deque probes (`steal_attempts`).
  std::uint64_t steals = 0;
  std::uint64_t steal_attempts = 0;
  std::uint64_t splits = 0;
  /// Wall microseconds workers spent inside tasks, summed across the
  /// pool (0 sequentially). With the solve's wall time this yields the
  /// worker-idle fraction; machine-dependent, never serialized.
  std::uint64_t worker_busy_us = 0;
  /// True when ExactOptions::abort cancelled the search (stop flag
  /// raised, or the root lower bound exceeded the external cost
  /// bound). The incumbent is still valid, just not proven.
  bool external_abort = false;

  /// Optimality gap of the incumbent (0 when proven).
  int gap() const { return cost - lower_bound; }
};

/// Minimum-cost allocation of `seq` onto at most `registers` address
/// registers under `model`. `registers` must be >= 1.
ExactResult exact_min_cost_allocation(const ir::AccessSequence& seq,
                                      const CostModel& model,
                                      std::size_t registers,
                                      const ExactOptions& options = {});

}  // namespace dspaddr::core
