#include "core/allocator.hpp"

#include <sstream>

#include "core/access_graph.hpp"
#include "core/validate.hpp"
#include "support/check.hpp"

namespace dspaddr::core {

Allocation::Allocation(const ir::AccessSequence& seq, CostModel model,
                       std::vector<Path> paths, AllocationStats stats)
    : model_(model), paths_(std::move(paths)), stats_(stats) {
  register_of_.assign(seq.size(), 0);
  for (std::size_t r = 0; r < paths_.size(); ++r) {
    intra_cost_ += path_intra_cost(seq, paths_[r], model_);
    wrap_cost_ += path_wrap_cost(seq, paths_[r], model_);
    for (std::size_t i = 0; i < paths_[r].size(); ++i) {
      register_of_[paths_[r][i]] = r;
    }
  }
}

std::size_t Allocation::register_of(std::size_t access) const {
  check_arg(access < register_of_.size(),
            "Allocation: access index out of range");
  return register_of_[access];
}

std::string Allocation::to_string(const ir::AccessSequence& seq) const {
  std::ostringstream out;
  for (std::size_t r = 0; r < paths_.size(); ++r) {
    out << "AR" << r << ": " << paths_[r].to_string()
        << "  offsets (";
    for (std::size_t i = 0; i < paths_[r].size(); ++i) {
      if (i > 0) out << ", ";
      out << seq[paths_[r][i]].offset;
    }
    out << ")  cost " << path_cost(seq, paths_[r], model_) << '\n';
  }
  out << "total cost " << cost() << " (intra " << intra_cost_ << ", wrap "
      << wrap_cost_ << ")\n";
  return out.str();
}

RegisterAllocator::RegisterAllocator(ProblemConfig config)
    : config_(config) {
  check_arg(config_.modify_range >= 0,
            "RegisterAllocator: modify range must be non-negative");
  check_arg(config_.registers >= 1,
            "RegisterAllocator: need at least one address register");
}

Allocation RegisterAllocator::run(const ir::AccessSequence& seq) const {
  const CostModel model = config_.cost_model();
  AllocationStats stats;

  if (seq.empty()) {
    return Allocation(seq, model, {}, stats);
  }

  const AccessGraph graph(seq, model);
  const Phase1Result phase1 =
      compute_min_register_cover(graph, config_.phase1);
  stats.k_tilde = phase1.k_tilde;
  stats.lower_bound = phase1.lower_bound;
  stats.upper_bound = phase1.upper_bound;
  stats.phase1_exact = phase1.exact;
  stats.search_nodes = phase1.search_nodes;

  std::vector<Path> paths = phase1.cover;
  if (paths.size() > config_.registers) {
    std::vector<MergeStep> trace;
    paths = merge_to_register_limit(seq, model, std::move(paths),
                                    config_.registers, config_.merge,
                                    &trace);
    stats.merges = trace.size();
  }

  validate_allocation(seq, paths, config_.registers);
  return Allocation(seq, model, std::move(paths), stats);
}

}  // namespace dspaddr::core
