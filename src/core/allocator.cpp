#include "core/allocator.hpp"

#include <chrono>
#include <limits>
#include <sstream>

#include "core/access_graph.hpp"
#include "core/exact.hpp"
#include "core/tiled.hpp"
#include "core/validate.hpp"
#include "support/check.hpp"

namespace dspaddr::core {

namespace {

/// Sentinel for accesses no path covers; register_of fails loudly on it
/// instead of letting a malformed cover masquerade as "everything on
/// AR0".
constexpr std::size_t kNoRegister = std::numeric_limits<std::size_t>::max();

}  // namespace

Allocation::Allocation(const ir::AccessSequence& seq, CostModel model,
                       std::vector<Path> paths, AllocationStats stats)
    : model_(model), paths_(std::move(paths)), stats_(stats) {
  register_of_.assign(seq.size(), kNoRegister);
  for (std::size_t r = 0; r < paths_.size(); ++r) {
    intra_cost_ += path_intra_cost(seq, paths_[r], model_);
    wrap_cost_ += path_wrap_cost(seq, paths_[r], model_);
    for (std::size_t i = 0; i < paths_[r].size(); ++i) {
      register_of_[paths_[r][i]] = r;
    }
  }
}

std::size_t Allocation::register_of(std::size_t access) const {
  check_arg(access < register_of_.size(),
            "Allocation: access index out of range");
  check_invariant(register_of_[access] != kNoRegister,
                  "Allocation: access is not covered by any path");
  return register_of_[access];
}

std::string Allocation::to_string(const ir::AccessSequence& seq) const {
  std::ostringstream out;
  for (std::size_t r = 0; r < paths_.size(); ++r) {
    out << "AR" << r << ": " << paths_[r].to_string()
        << "  offsets (";
    for (std::size_t i = 0; i < paths_[r].size(); ++i) {
      if (i > 0) out << ", ";
      out << seq[paths_[r][i]].offset;
    }
    out << ")  cost " << path_cost(seq, paths_[r], model_) << '\n';
  }
  out << "total cost " << cost() << " (intra " << intra_cost_ << ", wrap "
      << wrap_cost_ << ")\n";
  return out.str();
}

RegisterAllocator::RegisterAllocator(ProblemConfig config)
    : config_(config) {
  check_arg(config_.cost_model().valid(),
            "RegisterAllocator: modify range must be non-negative");
  check_arg(config_.registers >= 1,
            "RegisterAllocator: need at least one address register");
}

Allocation RegisterAllocator::run(const ir::AccessSequence& seq) const {
  const CostModel model = config_.cost_model();
  AllocationStats stats;

  if (seq.empty()) {
    return Allocation(seq, model, {}, stats);
  }

  const AccessGraph graph(seq, model);
  const Phase1Result phase1 =
      compute_min_register_cover(graph, config_.phase1);
  stats.k_tilde = phase1.k_tilde;
  stats.lower_bound = phase1.lower_bound;
  stats.upper_bound = phase1.upper_bound;
  stats.phase1_exact = phase1.exact;
  stats.search_nodes = phase1.search_nodes;

  std::vector<Path> paths = phase1.cover;
  if (paths.size() > config_.registers) {
    std::vector<MergeStep> trace;
    paths = merge_to_register_limit(seq, model, std::move(paths),
                                    config_.registers, config_.merge,
                                    &trace);
    stats.merges = trace.size();
  }
  validate_allocation(seq, paths, config_.registers);

  const int heuristic_cost = total_cost(seq, paths, model);
  const Phase2Options& phase2 = config_.phase2;
  const bool want_exact =
      phase2.mode == Phase2Options::Mode::kExact ||
      (phase2.mode == Phase2Options::Mode::kAuto &&
       seq.size() <= phase2.exact_access_limit);

  if (heuristic_cost == 0) {
    // Costs are non-negative, so a free allocation is trivially optimal
    // — no search needed to prove it. The proof holds in every mode,
    // but only the exact/auto modes claim the exact solver certified it.
    stats.phase2_exact = phase2.mode != Phase2Options::Mode::kHeuristic;
    stats.phase2_proven = true;
  } else if (want_exact) {
    ExactOptions options;
    options.max_nodes = phase2.max_nodes;
    options.time_budget_ms = phase2.time_budget_ms;
    options.jobs = phase2.jobs;
    options.steal_grain = phase2.steal_grain;
    options.warm_start = paths;
    options.abort = phase2.abort;
    const auto search_start = std::chrono::steady_clock::now();
    const ExactResult exact = exact_min_cost_allocation(
        seq, model, config_.registers, options);
    const double search_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      search_start)
            .count();
    stats.phase2_exact = true;
    stats.phase2_proven = exact.proven;
    stats.phase2_nodes = exact.nodes;
    stats.phase2_lower_bound = exact.lower_bound;
    stats.phase2_gap = exact.gap();
    stats.phase2_table_cap_hits = exact.table_cap_hits;
    stats.phase2_subtree_tasks = exact.subtree_tasks;
    stats.phase2_steals = exact.steals;
    stats.phase2_steal_attempts = exact.steal_attempts;
    stats.phase2_splits = exact.splits;
    stats.phase2_external_abort = exact.external_abort;
    if (search_seconds > 0.0) {
      stats.phase2_nodes_per_sec =
          static_cast<double>(exact.nodes) / search_seconds;
    }
    // Keep the heuristic's paths on a cost tie: the merge trace stays
    // meaningful and outputs stay stable across solver tweaks.
    if (exact.cost < heuristic_cost) {
      paths = exact.paths;
      validate_allocation(seq, paths, config_.registers);
    }
  } else if (phase2.mode == Phase2Options::Mode::kTiled) {
    TiledOptions options;
    options.tile_width = phase2.tile_width;
    options.tile_overlap = phase2.tile_overlap;
    options.auto_width = phase2.tile_width_auto;
    options.max_nodes = phase2.max_nodes;
    options.time_budget_ms = phase2.time_budget_ms;
    options.jobs = phase2.jobs;
    options.steal_grain = phase2.steal_grain;
    options.abort = phase2.abort;
    const auto search_start = std::chrono::steady_clock::now();
    const TiledResult tiled = tiled_min_cost_allocation(
        seq, model, config_.registers, options);
    const double search_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      search_start)
            .count();
    // A single window is a full exact solve; otherwise the result is
    // anytime: at least as good as the heuristic, no global proof.
    stats.phase2_exact = tiled.proven;
    stats.phase2_proven = tiled.proven;
    stats.phase2_nodes = tiled.nodes;
    stats.phase2_lower_bound = tiled.proven ? tiled.cost : 0;
    stats.phase2_gap = tiled.proven ? 0 : tiled.window_gap_total;
    stats.phase2_table_cap_hits = tiled.table_cap_hits;
    stats.phase2_subtree_tasks = tiled.subtree_tasks;
    stats.phase2_steals = tiled.steals;
    stats.phase2_steal_attempts = tiled.steal_attempts;
    stats.phase2_splits = tiled.splits;
    stats.phase2_windows = tiled.windows;
    stats.phase2_windows_proven = tiled.windows_proven;
    stats.phase2_window_widths = tiled.window_widths;
    stats.phase2_external_abort = tiled.external_abort;
    if (search_seconds > 0.0) {
      stats.phase2_nodes_per_sec =
          static_cast<double>(tiled.nodes) / search_seconds;
    }
    if (tiled.cost < heuristic_cost) {
      paths = tiled.paths;
      validate_allocation(seq, paths, config_.registers);
    }
  }

  return Allocation(seq, model, std::move(paths), stats);
}

}  // namespace dspaddr::core
