#include "core/branch_and_bound.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace dspaddr::core {

namespace {

/// Depth-first branch-and-bound over sequential path assignments.
class Search {
public:
  Search(const AccessGraph& graph, std::size_t incumbent_size,
         std::size_t lower_bound, std::uint64_t node_limit)
      : graph_(graph),
        seq_(graph.sequence()),
        model_(graph.model()),
        n_(graph.node_count()),
        best_size_(incumbent_size),
        lower_bound_(lower_bound),
        node_limit_(node_limit) {}

  /// Runs the search; returns the best cover found that improves on the
  /// incumbent, if any.
  std::optional<std::vector<Path>> run() {
    open_.clear();
    explore(0);
    return best_;
  }

  std::uint64_t nodes() const { return nodes_; }
  bool completed() const { return !aborted_; }

private:
  void explore(std::size_t next_access) {
    if (aborted_ || best_size_ <= lower_bound_) return;
    // The open-path count never decreases, so any subtree at or above
    // the incumbent cannot improve on it.
    if (open_.size() >= best_size_) return;
    if (++nodes_ > node_limit_) {
      aborted_ = true;
      return;
    }

    if (next_access == n_) {
      // Complete assignment: feasible iff every path wraps for free.
      for (const Path& path : open_) {
        if (!graph_.wrap_edge(path.last(), path.first())) return;
      }
      best_ = open_;
      best_size_ = open_.size();
      return;
    }

    // Appending to an open path keeps the register count unchanged, so
    // try appends first (cheapest-first) to reach good incumbents early.
    std::vector<std::size_t> candidates;
    candidates.reserve(open_.size());
    for (std::size_t p = 0; p < open_.size(); ++p) {
      if (intra_zero_cost(seq_, open_[p].last(), next_access, model_)) {
        candidates.push_back(p);
      }
    }
    std::sort(candidates.begin(), candidates.end(),
              [&](std::size_t a, std::size_t b) {
                const std::int64_t da = std::llabs(
                    *seq_.intra_distance(open_[a].last(), next_access));
                const std::int64_t db = std::llabs(
                    *seq_.intra_distance(open_[b].last(), next_access));
                return da < db;
              });
    for (std::size_t p : candidates) {
      open_[p].append(next_access);
      explore(next_access + 1);
      // Undo the append (Path has no pop; rebuild cheaply).
      std::vector<std::size_t> indices = open_[p].indices();
      indices.pop_back();
      open_[p] = Path(std::move(indices));
      if (aborted_) return;
    }

    // Opening a new path increases the count, which never decreases
    // again, so the branch can only improve when it stays below the
    // incumbent.
    if (open_.size() + 1 < best_size_) {
      open_.push_back(Path::singleton(next_access));
      explore(next_access + 1);
      open_.pop_back();
    }
  }

  const AccessGraph& graph_;
  const ir::AccessSequence& seq_;
  const CostModel& model_;
  const std::size_t n_;

  std::vector<Path> open_;
  std::optional<std::vector<Path>> best_;
  std::size_t best_size_;
  const std::size_t lower_bound_;
  const std::uint64_t node_limit_;
  std::uint64_t nodes_ = 0;
  bool aborted_ = false;
};

}  // namespace

Phase1Result compute_min_register_cover(const AccessGraph& graph,
                                        const Phase1Options& options) {
  Phase1Result result;
  const std::size_t n = graph.node_count();
  if (n == 0) {
    result.k_tilde = 0;
    result.exact = true;
    return result;
  }

  result.lower_bound = lower_bound_registers(graph);

  // Under the acyclic model the matching cover is the exact optimum.
  if (graph.model().wrap == WrapPolicy::kAcyclic) {
    result.cover = acyclic_optimal_cover(graph);
    result.k_tilde = result.cover.size();
    result.upper_bound = result.cover.size();
    result.exact = true;
    return result;
  }

  std::optional<std::vector<Path>> greedy = greedy_zero_cost_cover(graph);
  if (greedy.has_value()) {
    result.upper_bound = greedy->size();
    result.cover = *greedy;
    result.k_tilde = greedy->size();
  }

  const bool greedy_is_optimal =
      greedy.has_value() && greedy->size() == result.lower_bound;
  const bool run_exact =
      options.mode == Phase1Options::Mode::kExact ||
      (options.mode == Phase1Options::Mode::kAuto &&
       n <= options.exact_node_limit);

  if (greedy_is_optimal) {
    result.exact = true;
    return result;
  }
  if (!run_exact) {
    // Heuristic mode: keep the greedy cover (or fall back when it
    // failed); no optimality claim.
    if (!greedy.has_value()) {
      result.cover = acyclic_optimal_cover(graph);
      result.k_tilde = std::nullopt;
    }
    result.exact = false;
    return result;
  }

  // Incumbent: the greedy cover size, or "no cover" == n + 1 so that
  // any feasible assignment improves on it.
  const std::size_t incumbent =
      greedy.has_value() ? greedy->size() : n + 1;
  Search search(graph, incumbent, result.lower_bound,
                options.max_search_nodes);
  std::optional<std::vector<Path>> improved = search.run();
  result.search_nodes = search.nodes();
  result.exact = search.completed();

  if (improved.has_value()) {
    result.cover = std::move(*improved);
    result.k_tilde = result.cover.size();
  } else if (!greedy.has_value()) {
    // Search proved (or gave up proving) that no zero-cost cover exists.
    result.cover = acyclic_optimal_cover(graph);
    result.k_tilde = std::nullopt;
  }
  return result;
}

}  // namespace dspaddr::core
