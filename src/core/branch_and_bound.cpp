#include "core/branch_and_bound.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace dspaddr::core {

namespace {

/// Branch-and-bound over sequential path assignments, flattened onto
/// an explicit frame stack over a move arena (the same shape as the
/// phase-2 search in core/exact.cpp) — no recursion, no per-node
/// candidate vectors.
class Search {
public:
  Search(const AccessGraph& graph, std::size_t incumbent_size,
         std::size_t lower_bound, std::uint64_t node_limit)
      : graph_(graph),
        seq_(graph.sequence()),
        model_(graph.model()),
        n_(graph.node_count()),
        best_size_(incumbent_size),
        lower_bound_(lower_bound),
        node_limit_(node_limit) {}

  /// Runs the search; returns the best cover found that improves on the
  /// incumbent, if any.
  std::optional<std::vector<Path>> run() {
    open_.clear();
    if (visit(0)) {
      loop();
    }
    return best_;
  }

  std::uint64_t nodes() const { return nodes_; }
  bool completed() const { return !aborted_; }

private:
  /// A candidate placement of the frame's access: append to open path
  /// `path`, or open a fresh one. The open move is generated eagerly
  /// but re-guarded at apply time — the incumbent may have shrunk while
  /// the appends below it were explored.
  struct Move {
    std::uint32_t path = 0;
    bool open = false;
  };

  struct Frame {
    std::uint32_t next = 0;
    std::uint32_t move_begin = 0;
    std::uint32_t move_end = 0;
    std::uint32_t move_cursor = 0;
    Move applied;
    bool has_applied = false;
  };

  /// The visit steps of one node, in the recursive solver's order:
  /// prune, count, leaf, then a frame with the ordered moves. True
  /// when a frame was pushed.
  bool visit(std::size_t next_access) {
    if (aborted_ || best_size_ <= lower_bound_) return false;
    // The open-path count never decreases, so any subtree at or above
    // the incumbent cannot improve on it.
    if (open_.size() >= best_size_) return false;
    if (++nodes_ > node_limit_) {
      aborted_ = true;
      return false;
    }

    if (next_access == n_) {
      // Complete assignment: feasible iff every path wraps for free.
      for (const Path& path : open_) {
        if (!graph_.wrap_edge(path.last(), path.first())) return false;
      }
      best_ = open_;
      best_size_ = open_.size();
      return false;
    }

    push_frame(next_access);
    return true;
  }

  /// Generates the candidate moves of `next_access` into the arena:
  /// appends to zero-cost-compatible open paths first (nearest endpoint
  /// first, to reach good incumbents early), then the fresh opening.
  void push_frame(std::size_t next_access) {
    const std::uint32_t begin = static_cast<std::uint32_t>(arena_.size());
    for (std::size_t p = 0; p < open_.size(); ++p) {
      if (intra_zero_cost(seq_, open_[p].last(), next_access, model_)) {
        arena_.push_back(Move{static_cast<std::uint32_t>(p), false});
      }
    }
    std::sort(arena_.begin() + begin, arena_.end(),
              [&](const Move& a, const Move& b) {
                const std::int64_t da = std::llabs(
                    *seq_.intra_distance(open_[a.path].last(), next_access));
                const std::int64_t db = std::llabs(
                    *seq_.intra_distance(open_[b.path].last(), next_access));
                return da < db;
              });
    arena_.push_back(Move{0, true});

    Frame frame;
    frame.next = static_cast<std::uint32_t>(next_access);
    frame.move_begin = begin;
    frame.move_end = static_cast<std::uint32_t>(arena_.size());
    frame.move_cursor = begin;
    frames_.push_back(frame);
  }

  void apply_move(Frame& frame, const Move& move) {
    if (move.open) {
      open_.push_back(Path::singleton(frame.next));
    } else {
      open_[move.path].append(frame.next);
    }
    frame.applied = move;
    frame.has_applied = true;
  }

  void undo_move(Frame& frame) {
    if (frame.applied.open) {
      open_.pop_back();
    } else {
      // Undo the append (Path has no pop; rebuild cheaply).
      std::vector<std::size_t> indices = open_[frame.applied.path].indices();
      indices.pop_back();
      open_[frame.applied.path] = Path(std::move(indices));
    }
    frame.has_applied = false;
  }

  /// The flat DFS driver. Opening a new path increases a count that
  /// never decreases again, so the open move only applies while it
  /// stays below the incumbent (checked against the *current* best —
  /// the appends explored before it may have improved it).
  void loop() {
    while (!frames_.empty()) {
      Frame& frame = frames_.back();
      if (frame.has_applied) undo_move(frame);
      if (aborted_ || frame.move_cursor == frame.move_end) {
        arena_.resize(frame.move_begin);
        frames_.pop_back();
        continue;
      }
      const Move move = arena_[frame.move_cursor++];
      if (move.open && open_.size() + 1 >= best_size_) {
        // The trailing open move is always last; the frame is done.
        continue;
      }
      apply_move(frame, move);
      visit(frame.next + 1);
    }
  }

  const AccessGraph& graph_;
  const ir::AccessSequence& seq_;
  const CostModel& model_;
  const std::size_t n_;

  std::vector<Path> open_;
  std::optional<std::vector<Path>> best_;
  std::size_t best_size_;
  const std::size_t lower_bound_;
  const std::uint64_t node_limit_;
  std::vector<Frame> frames_;
  std::vector<Move> arena_;
  std::uint64_t nodes_ = 0;
  bool aborted_ = false;
};

}  // namespace

Phase1Result compute_min_register_cover(const AccessGraph& graph,
                                        const Phase1Options& options) {
  Phase1Result result;
  const std::size_t n = graph.node_count();
  if (n == 0) {
    result.k_tilde = 0;
    result.exact = true;
    return result;
  }

  result.lower_bound = lower_bound_registers(graph);

  // Under the acyclic model the matching cover is the exact optimum.
  if (graph.model().wrap == WrapPolicy::kAcyclic) {
    result.cover = acyclic_optimal_cover(graph);
    result.k_tilde = result.cover.size();
    result.upper_bound = result.cover.size();
    result.exact = true;
    return result;
  }

  std::optional<std::vector<Path>> greedy = greedy_zero_cost_cover(graph);
  if (greedy.has_value()) {
    result.upper_bound = greedy->size();
    result.cover = *greedy;
    result.k_tilde = greedy->size();
  }

  const bool greedy_is_optimal =
      greedy.has_value() && greedy->size() == result.lower_bound;
  const bool run_exact =
      options.mode == Phase1Options::Mode::kExact ||
      (options.mode == Phase1Options::Mode::kAuto &&
       n <= options.exact_node_limit);

  if (greedy_is_optimal) {
    result.exact = true;
    return result;
  }
  if (!run_exact) {
    // Heuristic mode: keep the greedy cover (or fall back when it
    // failed); no optimality claim.
    if (!greedy.has_value()) {
      result.cover = acyclic_optimal_cover(graph);
      result.k_tilde = std::nullopt;
    }
    result.exact = false;
    return result;
  }

  // Incumbent: the greedy cover size, or "no cover" == n + 1 so that
  // any feasible assignment improves on it.
  const std::size_t incumbent =
      greedy.has_value() ? greedy->size() : n + 1;
  Search search(graph, incumbent, result.lower_bound,
                options.max_search_nodes);
  std::optional<std::vector<Path>> improved = search.run();
  result.search_nodes = search.nodes();
  result.exact = search.completed();

  if (improved.has_value()) {
    result.cover = std::move(*improved);
    result.k_tilde = result.cover.size();
  } else if (!greedy.has_value()) {
    // Search proved (or gave up proving) that no zero-cost cover exists.
    result.cover = acyclic_optimal_cover(graph);
    result.k_tilde = std::nullopt;
  }
  return result;
}

}  // namespace dspaddr::core
