// The graph model G = (V, E) of the access pattern (paper section 2,
// Fig. 1).
//
// Nodes are the N accesses in sequence order. An intra-iteration edge
// (a_i, a_j), i < j, exists iff computing a_j's address from a_i's is a
// free post-modify (|distance| <= M): "no unit-cost computation would be
// incurred if a_i, a_j shared an address register". Inter-iteration
// (wrap) edges represent the same relation from an access in iteration t
// to an access in iteration t+1; they determine whether a register's
// path can be closed at zero cost across the loop back-edge.
#pragma once

#include <vector>

#include "core/cost_model.hpp"
#include "graph/digraph.hpp"
#include "ir/access_sequence.hpp"

namespace dspaddr::core {

/// The zero-cost graph model of one access sequence.
class AccessGraph {
public:
  AccessGraph(const ir::AccessSequence& seq, const CostModel& model);

  std::size_t node_count() const { return intra_.node_count(); }

  /// DAG of intra-iteration zero-cost edges (i < j only).
  const graph::Digraph& intra() const { return intra_; }

  /// True iff the transition from access `last` (iteration t) to access
  /// `first` (iteration t+1) is zero-cost. Under WrapPolicy::kAcyclic
  /// this is always true (the boundary is never charged).
  bool wrap_edge(std::size_t last, std::size_t first) const;

  const ir::AccessSequence& sequence() const { return seq_; }
  const CostModel& model() const { return model_; }

private:
  ir::AccessSequence seq_;
  CostModel model_;
  graph::Digraph intra_;
  // wrap_ok_[last * N + first]; materialized because phase 1 queries it
  // on every branch.
  std::vector<bool> wrap_ok_;
};

}  // namespace dspaddr::core
