// The two-phase register-constrained address-register allocator — the
// top-level API of the paper's technique (paper section 3).
//
//   core::RegisterAllocator alloc({.modify_range = 1, .registers = 2});
//   core::Allocation a = alloc.run(seq);
//
// Phase 1 computes the minimum zero-cost cover (K~ virtual registers);
// phase 2 merges paths until the physical register count K is met.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/branch_and_bound.hpp"
#include "core/cost_model.hpp"
#include "core/merging.hpp"
#include "core/path.hpp"
#include "ir/access_sequence.hpp"

namespace dspaddr::core {

/// Full configuration of one allocation problem.
struct ProblemConfig {
  /// AGU maximum modify range M (>= 0).
  std::int64_t modify_range = 1;
  /// Number of physical address registers K (>= 1).
  std::size_t registers = 1;
  WrapPolicy wrap = WrapPolicy::kCyclic;
  Phase1Options phase1 = {};
  MergeOptions merge = {};

  CostModel cost_model() const { return CostModel{modify_range, wrap}; }
};

/// Diagnostic counters of one allocator run.
struct AllocationStats {
  /// K~ (nullopt when no zero-cost cover exists, see Phase1Result).
  std::optional<std::size_t> k_tilde;
  std::size_t lower_bound = 0;
  std::optional<std::size_t> upper_bound;
  bool phase1_exact = false;
  std::uint64_t search_nodes = 0;
  std::size_t merges = 0;
};

/// The result: an assignment of every access to one address register.
class Allocation {
public:
  Allocation(const ir::AccessSequence& seq, CostModel model,
             std::vector<Path> paths, AllocationStats stats);

  const std::vector<Path>& paths() const { return paths_; }
  std::size_t register_count() const { return paths_.size(); }

  /// Register (path) index handling access `i`.
  std::size_t register_of(std::size_t access) const;

  /// Unit-cost address computations per steady-state iteration.
  int cost() const { return intra_cost_ + wrap_cost_; }
  int intra_cost() const { return intra_cost_; }
  int wrap_cost() const { return wrap_cost_; }

  const AllocationStats& stats() const { return stats_; }
  const CostModel& model() const { return model_; }

  /// Multi-line human-readable rendering (register -> path -> cost).
  std::string to_string(const ir::AccessSequence& seq) const;

private:
  CostModel model_;
  std::vector<Path> paths_;
  std::vector<std::size_t> register_of_;
  int intra_cost_ = 0;
  int wrap_cost_ = 0;
  AllocationStats stats_;
};

/// Two-phase allocator (paper section 3).
class RegisterAllocator {
public:
  explicit RegisterAllocator(ProblemConfig config);

  const ProblemConfig& config() const { return config_; }

  /// Runs both phases on `seq` and returns a validated allocation.
  Allocation run(const ir::AccessSequence& seq) const;

private:
  ProblemConfig config_;
};

}  // namespace dspaddr::core
