// The two-phase register-constrained address-register allocator — the
// top-level API of the paper's technique (paper section 3).
//
//   core::RegisterAllocator alloc({.modify_range = 1, .registers = 2});
//   core::Allocation a = alloc.run(seq);
//
// Phase 1 computes the minimum zero-cost cover (K~ virtual registers);
// phase 2 reduces to the physical register count K — by cost-guided
// merging (the paper's heuristic), and by default also by the anytime
// exact branch-and-bound (core/exact.hpp) warm-started with the
// heuristic result, which upgrades the allocation to a proven optimum
// on realistically sized kernels.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/branch_and_bound.hpp"
#include "core/cost_model.hpp"
#include "core/exact.hpp"
#include "core/merging.hpp"
#include "core/path.hpp"
#include "ir/access_sequence.hpp"

namespace dspaddr::core {

/// Controls the phase-2 reduction to K physical registers.
struct Phase2Options {
  enum class Mode {
    /// Heuristic merge, then the exact search up to
    /// `exact_access_limit` accesses.
    kAuto,
    /// Always run the exact search (subject to the budgets).
    kExact,
    /// Only the paper's cost-guided merging (no optimality claim).
    kHeuristic,
    /// Overlapping windows solved exactly, stitched heuristically
    /// (core/tiled.hpp) — the anytime middle rung between kHeuristic
    /// and kExact for long kernels. Proven only when one window covers
    /// the whole sequence.
    kTiled,
  };

  Mode mode = Mode::kAuto;
  /// kAuto skips the exact search above this many accesses.
  std::size_t exact_access_limit = 24;
  /// Node budget of the exact search; hitting it keeps the incumbent
  /// and reports the optimality gap instead of a proof. Deterministic,
  /// unlike a wall-clock budget.
  std::uint64_t max_nodes = 2'000'000;
  /// Wall-clock budget in milliseconds; 0 disables the clock. Leave at
  /// 0 when byte-identical reruns matter (batch determinism).
  std::int64_t time_budget_ms = 0;
  /// Worker threads of the phase-2 search (ExactOptions::jobs): 1 runs
  /// the exact sequential search, > 1 runs it on a work-stealing pool
  /// (runtime::StealPool). Proven costs are identical at any level.
  std::size_t jobs = 1;
  /// Minimum unassigned-suffix length of a donated subtree when
  /// `jobs > 1` (ExactOptions::steal_grain); 0 uses the built-in
  /// default. Any value yields the same proven cost.
  std::size_t steal_grain = 0;
  /// Window geometry of kTiled (TiledOptions).
  std::size_t tile_width = 20;
  std::size_t tile_overlap = 6;
  /// kTiled window-width auto-tuning (TiledOptions::auto_width,
  /// `--phase2-window=auto`): start at `tile_width`, then re-size each
  /// window from the previous one's measured search effort.
  bool tile_width_auto = false;
  /// External cancellation, forwarded to the exact/tiled phase-2 solve
  /// (core::SearchAbortHook). A cancelled solve keeps the heuristic
  /// allocation (or the best incumbent) and reports
  /// AllocationStats::phase2_external_abort.
  SearchAbortHook abort;
};

/// Full configuration of one allocation problem.
struct ProblemConfig {
  /// AGU maximum modify range M (>= 0). Used as the symmetric window
  /// [-M, M] unless `modify_lo`/`modify_hi` override it.
  std::int64_t modify_range = 1;
  /// Asymmetric free-window bounds; when set they replace the
  /// symmetric [-modify_range, modify_range] window.
  std::optional<std::int64_t> modify_lo;
  std::optional<std::int64_t> modify_hi;
  /// Extra free auto-inc/dec widths outside the window.
  std::vector<std::int64_t> free_widths;
  /// Number of physical address registers K (>= 1).
  std::size_t registers = 1;
  WrapPolicy wrap = WrapPolicy::kCyclic;
  Phase1Options phase1 = {};
  MergeOptions merge = {};
  Phase2Options phase2 = {};

  CostModel cost_model() const {
    if (!modify_lo.has_value() && !modify_hi.has_value() &&
        free_widths.empty()) {
      return CostModel{modify_range, wrap};
    }
    return CostModel{modify_lo.value_or(-modify_range),
                     modify_hi.value_or(modify_range), free_widths, wrap};
  }
};

/// Diagnostic counters of one allocator run.
struct AllocationStats {
  /// K~ (nullopt when no zero-cost cover exists, see Phase1Result).
  std::optional<std::size_t> k_tilde;
  std::size_t lower_bound = 0;
  std::optional<std::size_t> upper_bound;
  bool phase1_exact = false;
  std::uint64_t search_nodes = 0;
  std::size_t merges = 0;
  /// True when the exact phase-2 search ran (or the heuristic cost was
  /// trivially optimal at 0).
  bool phase2_exact = false;
  /// True when the final cost is provably minimal for this (K, M).
  bool phase2_proven = false;
  /// Nodes explored by the phase-2 search (0 when it did not run).
  std::uint64_t phase2_nodes = 0;
  /// Best proven lower bound on the phase-2 optimum (valid when
  /// `phase2_exact`; equals the cost when `phase2_proven`).
  int phase2_lower_bound = 0;
  /// Cost minus lower bound: 0 when proven, the anytime gap otherwise.
  int phase2_gap = 0;
  /// Dominance lookups made while the phase-2 transposition table was
  /// at its entry cap (insertion refused) — nonzero means a larger
  /// table could have pruned more (ExactResult::table_cap_hits).
  std::uint64_t phase2_table_cap_hits = 0;
  /// Tasks the parallel search's work-stealing pool executed — the
  /// root plus every donated subtree (0 for a sequential solve;
  /// schedule-dependent above jobs = 1, unlike the cost/proof).
  std::uint64_t phase2_subtree_tasks = 0;
  /// Work-stealing diagnostics of the parallel phase-2 search: subtrees
  /// donated by busy workers (`splits`), tasks stolen by idle workers
  /// (`steals`), and victim-deque probes (`steal_attempts`). All
  /// exactly 0 at jobs = 1 and schedule-dependent above it.
  std::uint64_t phase2_steals = 0;
  std::uint64_t phase2_steal_attempts = 0;
  std::uint64_t phase2_splits = 0;
  /// Search throughput of the phase-2 solve (0 when it did not run).
  /// Wall-clock derived — diagnostic only, never serialized into
  /// byte-compared outputs.
  double phase2_nodes_per_sec = 0.0;
  /// Tiled mode: windows swept, and how many proved optimal within
  /// their boundary (both 0 outside kTiled).
  std::size_t phase2_windows = 0;
  std::size_t phase2_windows_proven = 0;
  /// Tiled mode: the width of each swept window in order — constant
  /// for a fixed-width sweep, the tuner's choices under
  /// `tile_width_auto` (empty outside kTiled).
  std::vector<std::size_t> phase2_window_widths;
  /// True when Phase2Options::abort cancelled the phase-2 solve
  /// (portfolio racing). Such a result is a valid allocation but not a
  /// contender — the engine never caches or persists it.
  bool phase2_external_abort = false;
};

/// The result: an assignment of every access to one address register.
class Allocation {
public:
  Allocation(const ir::AccessSequence& seq, CostModel model,
             std::vector<Path> paths, AllocationStats stats);

  const std::vector<Path>& paths() const { return paths_; }
  std::size_t register_count() const { return paths_.size(); }

  /// Register (path) index handling access `i`; throws when the paths
  /// do not cover access `i` (a malformed cover must not silently read
  /// as "AR0").
  std::size_t register_of(std::size_t access) const;

  /// Unit-cost address computations per steady-state iteration.
  int cost() const { return intra_cost_ + wrap_cost_; }
  int intra_cost() const { return intra_cost_; }
  int wrap_cost() const { return wrap_cost_; }

  const AllocationStats& stats() const { return stats_; }
  const CostModel& model() const { return model_; }

  /// Multi-line human-readable rendering (register -> path -> cost).
  std::string to_string(const ir::AccessSequence& seq) const;

private:
  CostModel model_;
  std::vector<Path> paths_;
  std::vector<std::size_t> register_of_;
  int intra_cost_ = 0;
  int wrap_cost_ = 0;
  AllocationStats stats_;
};

/// Two-phase allocator (paper section 3).
class RegisterAllocator {
public:
  explicit RegisterAllocator(ProblemConfig config);

  const ProblemConfig& config() const { return config_; }

  /// Runs both phases on `seq` and returns a validated allocation.
  Allocation run(const ir::AccessSequence& seq) const;

private:
  ProblemConfig config_;
};

}  // namespace dspaddr::core
