// Structural validation of allocations (post-conditions of the
// allocator, also used directly by tests and failure-injection checks).
#pragma once

#include <cstddef>
#include <vector>

#include "core/path.hpp"
#include "ir/access_sequence.hpp"

namespace dspaddr::core {

/// Checks that `paths` is a partition of the access sequence into
/// order-preserving subsequences with at most `register_limit` parts:
///  * every access index in [0, seq.size()) appears in exactly one path,
///  * indices inside each path are strictly increasing,
///  * no path is empty and paths.size() <= register_limit.
/// Throws InvariantViolation on the first violation.
void validate_allocation(const ir::AccessSequence& seq,
                         const std::vector<Path>& paths,
                         std::size_t register_limit);

}  // namespace dspaddr::core
