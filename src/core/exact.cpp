#include "core/exact.hpp"

#include <algorithm>
#include <limits>

#include "core/validate.hpp"
#include "support/check.hpp"

namespace dspaddr::core {

namespace {

class ExactSearch {
public:
  ExactSearch(const ir::AccessSequence& seq, const CostModel& model,
              std::size_t registers, std::uint64_t node_limit)
      : seq_(seq),
        model_(model),
        registers_(registers),
        node_limit_(node_limit),
        assignment_(seq.size(), kUnassigned),
        best_assignment_(seq.size(), 0) {}

  ExactResult run() {
    seed_incumbent_with_greedy_sweep();
    states_.assign(registers_, RegisterState{});
    explore(0, 0);

    ExactResult result;
    result.proven = !aborted_;
    result.nodes = nodes_;
    result.cost = best_cost_;
    std::vector<std::vector<std::size_t>> groups(registers_);
    for (std::size_t i = 0; i < seq_.size(); ++i) {
      groups[best_assignment_[i]].push_back(i);
    }
    for (auto& group : groups) {
      if (!group.empty()) result.paths.emplace_back(std::move(group));
    }
    return result;
  }

private:
  static constexpr std::size_t kUnassigned =
      std::numeric_limits<std::size_t>::max();

  struct RegisterState {
    bool used = false;
    std::size_t first = 0;
    std::size_t last = 0;
  };

  /// Cheap left-to-right sweep (place each access on the register with
  /// the cheapest transition) to start the search with a finite
  /// incumbent; dramatically improves pruning.
  void seed_incumbent_with_greedy_sweep() {
    std::vector<RegisterState> states(registers_);
    std::vector<std::size_t> assignment(seq_.size(), 0);
    int cost = 0;
    for (std::size_t i = 0; i < seq_.size(); ++i) {
      std::size_t best_r = 0;
      int best_step = std::numeric_limits<int>::max();
      for (std::size_t r = 0; r < registers_; ++r) {
        const int step =
            states[r].used
                ? intra_transition_cost(seq_, states[r].last, i, model_)
                : 0;
        if (step < best_step) {
          best_step = step;
          best_r = r;
        }
      }
      if (!states[best_r].used) {
        states[best_r] = RegisterState{true, i, i};
      } else {
        cost += best_step;
        states[best_r].last = i;
      }
      assignment[i] = best_r;
    }
    for (const RegisterState& s : states) {
      if (s.used) {
        cost += wrap_transition_cost(seq_, s.last, s.first, model_);
      }
    }
    // The greedy assignment is achievable, so it is a valid incumbent:
    // the search then only records strictly better solutions, and an
    // exhausted search proves the incumbent optimal.
    best_cost_ = cost;
    best_assignment_ = assignment;
  }

  int wrap_total() const {
    int total = 0;
    for (const RegisterState& s : states_) {
      if (s.used) {
        total += wrap_transition_cost(seq_, s.last, s.first, model_);
      }
    }
    return total;
  }

  void explore(std::size_t next_access, int partial_cost) {
    if (aborted_ || partial_cost >= best_cost_) return;
    if (++nodes_ > node_limit_) {
      aborted_ = true;
      return;
    }

    if (next_access == seq_.size()) {
      const int total = partial_cost + wrap_total();
      if (total < best_cost_) {
        best_cost_ = total;
        best_assignment_ = assignment_;
      }
      return;
    }

    bool opened_fresh_register = false;
    for (std::size_t r = 0; r < registers_; ++r) {
      RegisterState& state = states_[r];
      if (!state.used) {
        // All unused registers are interchangeable: try only the first.
        if (opened_fresh_register) break;
        opened_fresh_register = true;
        state = RegisterState{true, next_access, next_access};
        assignment_[next_access] = r;
        explore(next_access + 1, partial_cost);
        assignment_[next_access] = kUnassigned;
        state = RegisterState{};
      } else {
        const int step =
            intra_transition_cost(seq_, state.last, next_access, model_);
        const std::size_t saved_last = state.last;
        state.last = next_access;
        assignment_[next_access] = r;
        explore(next_access + 1, partial_cost + step);
        assignment_[next_access] = kUnassigned;
        state.last = saved_last;
      }
      if (aborted_) return;
    }
  }

  const ir::AccessSequence& seq_;
  const CostModel& model_;
  const std::size_t registers_;
  const std::uint64_t node_limit_;

  std::vector<RegisterState> states_;
  std::vector<std::size_t> assignment_;
  std::vector<std::size_t> best_assignment_;
  int best_cost_ = std::numeric_limits<int>::max();
  std::uint64_t nodes_ = 0;
  bool aborted_ = false;
};

}  // namespace

ExactResult exact_min_cost_allocation(const ir::AccessSequence& seq,
                                      const CostModel& model,
                                      std::size_t registers,
                                      const ExactOptions& options) {
  check_arg(registers >= 1,
            "exact_min_cost_allocation: need at least one register");
  if (seq.empty()) {
    return ExactResult{{}, 0, true, 0};
  }

  ExactSearch search(seq, model, registers, options.max_nodes);
  ExactResult result = search.run();
  check_invariant(result.cost != std::numeric_limits<int>::max(),
                  "exact_min_cost_allocation: no assignment found");
  validate_allocation(seq, result.paths, registers);
  return result;
}

}  // namespace dspaddr::core
