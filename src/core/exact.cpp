#include "core/exact.hpp"

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <limits>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/bounds.hpp"
#include "core/validate.hpp"
#include "runtime/steal_pool.hpp"
#include "support/check.hpp"

namespace dspaddr::core {

namespace {

/// Entries kept in a transposition table before insertion stops;
/// lookups and in-place improvements continue past the cap, so the
/// search stays correct, only less pruned (and counts the refusals).
constexpr std::size_t kDefaultTableCap = std::size_t{1} << 21;

/// Dominance pruning tracks at most this many register states per key;
/// beyond it the table is disabled (the other prunings keep working).
/// Covers the whole builtin machine catalog (max K = 8).
constexpr std::size_t kMaxDominanceRegisters = 8;

/// Default ExactOptions::steal_grain: a donated subtree must still
/// have at least this many accesses to assign. Small enough that work
/// remains stealable close to the leaves of a skewed tree, large
/// enough that a stolen task amortizes its replay + scheduling cost
/// over hundreds of nodes.
constexpr std::size_t kDefaultStealGrain = 8;

/// Fixed-size, allocation-free transposition key: the next access in
/// words[0], then one (first << 32 | last) word per used register in
/// register order (canonical under the fresh rule — firsts increase
/// with the register index); unused slots hold an all-ones sentinel.
/// 32-bit packing is exact for any sequence that fits in memory.
struct StateKey {
  std::array<std::uint64_t, kMaxDominanceRegisters + 1> words;

  friend bool operator==(const StateKey& a, const StateKey& b) {
    return a.words == b.words;
  }
};

struct StateKeyHash {
  std::size_t operator()(const StateKey& key) const {
    // FNV-1a over the packed words.
    std::uint64_t hash = 1469598103934665603ULL;
    for (const std::uint64_t word : key.words) {
      hash = (hash ^ word) * 1099511628211ULL;
    }
    return static_cast<std::size_t>(hash);
  }
};

using Clock = std::chrono::steady_clock;
using Table = std::unordered_map<StateKey, int, StateKeyHash>;

constexpr std::size_t kUnassigned = std::numeric_limits<std::size_t>::max();

/// Transposition table shared by every subtree task of a parallel
/// solve, striped-mutexed so pruning decisions see the states *all*
/// tasks have visited. Without it each task re-explores states its
/// siblings already reached more cheaply — the dominant source of
/// parallel node inflation. Pruning stays admissible under any
/// interleaving: an entry holds the cheapest prefix cost any task has
/// continued the search from, so a lookup at no lower cost can only
/// cut subtrees whose best completion is matched elsewhere (and an
/// aborted solve reports proven=false regardless).
class SharedTable {
 public:
  explicit SharedTable(std::size_t cap)
      : stripe_cap_(std::max<std::size_t>(cap / kStripes, 1)) {}

  /// True when the state was already reached at no higher cost;
  /// records/improves the entry otherwise. Adds any insertion refusal
  /// past the cap to `cap_hits`.
  bool dominated(const StateKey& key, int cost, std::uint64_t& cap_hits) {
    Stripe& stripe = stripes_[StateKeyHash{}(key) % kStripes];
    const std::lock_guard<std::mutex> lock(stripe.mutex);
    const auto it = stripe.map.find(key);
    if (it != stripe.map.end()) {
      if (it->second <= cost) return true;
      it->second = cost;
      return false;
    }
    if (stripe.map.size() < stripe_cap_) {
      stripe.map.emplace(key, cost);
    } else {
      ++cap_hits;
    }
    return false;
  }

 private:
  static constexpr std::size_t kStripes = 64;
  struct Stripe {
    std::mutex mutex;
    Table map;
  };
  std::array<Stripe, kStripes> stripes_;
  const std::size_t stripe_cap_;
};

/// Problem, budgets and cross-task shared state of one solve. The
/// incumbent cost is read lock-free for pruning; the witness
/// assignment (and the authoritative cost guarding updates) live under
/// the mutex. Everything else is read-only while searchers run.
struct SearchContext {
  SearchContext(const ir::AccessSequence& sequence, const CostModel& cost_model,
                std::size_t register_count, const ExactOptions& opts)
      : seq(sequence),
        model(cost_model),
        registers(register_count),
        options(opts),
        table_cap(opts.table_cap == 0 ? kDefaultTableCap : opts.table_cap),
        use_dominance(opts.use_dominance &&
                      register_count <= kMaxDominanceRegisters),
        legacy(!opts.use_bounds && !opts.use_dominance),
        max_nodes(opts.max_nodes),
        steal_grain(opts.steal_grain == 0 ? kDefaultStealGrain
                                          : opts.steal_grain) {
    // Only the bounded solver reads the O(N^2) tables; the legacy
    // baseline must not pay for (or benefit from) their construction.
    if (options.use_bounds) {
      bounds.emplace(seq, model);
    }
  }

  /// Starts the wall clock immediately before the search proper, so
  /// table construction and incumbent seeding never eat the budget.
  void arm_deadline() {
    if (options.time_budget_ms > 0) {
      deadline =
          Clock::now() + std::chrono::milliseconds(options.time_budget_ms);
      has_deadline = true;
    }
  }

  /// Records a complete assignment when it strictly improves the
  /// incumbent. Rare enough that the mutex never contends measurably;
  /// the lock-free fast reject keeps losers off it entirely.
  void record_solution(int total, const std::vector<std::size_t>& assignment) {
    if (total >= best_cost.load(std::memory_order_relaxed)) return;
    const std::lock_guard<std::mutex> lock(best_mutex);
    if (total < best_cost.load(std::memory_order_relaxed)) {
      best_cost.store(total, std::memory_order_relaxed);
      best_assignment = assignment;
    }
  }

  const ir::AccessSequence& seq;
  const CostModel& model;
  const std::size_t registers;
  const ExactOptions& options;
  std::optional<SuffixBounds> bounds;
  const std::size_t table_cap;
  const bool use_dominance;
  /// The pre-anytime enumeration (register index order, fresh-register
  /// rule only) — the measurement baseline for bench_exact_gap.
  const bool legacy;

  const std::uint64_t max_nodes;
  bool has_deadline = false;
  Clock::time_point deadline;

  std::atomic<int> best_cost{std::numeric_limits<int>::max()};
  std::mutex best_mutex;
  std::vector<std::size_t> best_assignment;

  std::atomic<std::uint64_t> nodes{0};
  std::atomic<std::uint64_t> cap_hits{0};
  std::atomic<bool> aborted{false};
  /// Set (alongside `aborted`) when ExactOptions::abort cancelled the
  /// solve — either the shared stop flag or the external cost bound.
  std::atomic<bool> external_abort{false};
  /// The admissible root bound, frozen before the search starts — the
  /// proven lower bound the external cost-bound check compares against
  /// (a tighter per-node bound would make cancellation timing depend
  /// on traversal order; the root bound keeps it a pure function of
  /// the problem and the bound value).
  int root_lb = 0;

  /// Cross-task dominance table of the parallel phase (null for a
  /// sequential solve, which keeps its faster lock-free private table).
  SharedTable* shared_table = nullptr;
  /// Work-stealing pool of a parallel solve (null sequentially). A
  /// searcher polls pool->hungry() every ~1024 nodes and donates its
  /// shallowest untried subtrees while workers are starving.
  runtime::StealPool* pool = nullptr;
  /// Minimum unassigned-suffix length of a donated subtree.
  const std::size_t steal_grain;
};

/// Runs one pinned-prefix subtree task on the shared context. This is
/// the steal boundary: a solve that was cancelled (externally via
/// SearchAbortHook, or by budget/clock) must not start stolen
/// subtrees, so both flags are checked before any node is expanded —
/// a raced portfolio loser dies here instead of burning a 1024-node
/// cadence per stolen task.
void search_subtree(SearchContext& ctx, const std::vector<std::size_t>& prefix);

/// One flat branch-and-bound task: an explicit frame stack over a move
/// arena explores every completion of a pinned prefix — no recursion,
/// no per-node allocation. Node counts flush to the shared context
/// every 1024 nodes; the wall clock, the cross-task abort flag and the
/// pool's hunger signal are checked at the same cadence, while the
/// node cap is checked per node (so `max_nodes = 10` still aborts
/// after exactly 10 nodes sequentially). When the pool reports hungry
/// workers the searcher donates its shallowest untried subtrees: the
/// last candidate move of a shallow frame is removed from the owner's
/// range and republished as a pinned-prefix task, so the owner and the
/// thief partition the tree exactly — no node is searched twice and
/// none is lost. A sequential solve owns a private lock-free
/// transposition table; parallel tasks share the context's striped
/// table, so nothing unsynchronized is written cross-task.
class Searcher {
 public:
  Searcher(SearchContext& ctx, std::size_t table_cap)
      : ctx_(ctx),
        n_(ctx.seq.size()),
        table_cap_(table_cap),
        use_bound_terms_(ctx.bounds.has_value() && ctx.bounds->dense()),
        states_(ctx.registers),
        assignment_(ctx.seq.size(), kUnassigned) {}

  /// Explores every completion of `prefix` (accesses [0, prefix.size())
  /// pinned), sharing the incumbent, node budget and abort state.
  void run(const std::vector<std::size_t>& prefix) {
    if (ctx_.aborted.load(std::memory_order_relaxed)) return;
    const int prefix_cost = replay_prefix(prefix);
    if (visit(prefix.size(), prefix_cost)) {
      loop();
    }
    flush();
  }

  /// Publishes any locally buffered node / cap-hit counts.
  void flush() {
    if (local_nodes_ != 0) {
      flushed_total_ =
          ctx_.nodes.fetch_add(local_nodes_, std::memory_order_relaxed) +
          local_nodes_;
      local_nodes_ = 0;
    }
    if (local_cap_hits_ != 0) {
      ctx_.cap_hits.fetch_add(local_cap_hits_, std::memory_order_relaxed);
      local_cap_hits_ = 0;
    }
  }

 private:
  struct RegisterState {
    bool used = false;
    std::uint32_t first = 0;
    std::uint32_t last = 0;
    /// Cached wrap cost last -> first and `first`'s zero-wrap horizon
    /// — the incremental form of SuffixBounds::wrap_floor, updated
    /// O(1) on assign/undo so bound evaluation touches no O(N^2)
    /// table.
    std::uint8_t wrap_direct = 0;
    std::size_t wrap_horizon = 0;
  };

  /// Candidate placement of the next access, for cheapest-first
  /// ordering.
  struct Move {
    std::uint32_t reg;
    std::int32_t step;
    bool fresh;
  };

  /// One suspended search node: the arena slice of its candidate
  /// moves, the cursor into them, and the undo record of the move
  /// currently applied below it.
  struct Frame {
    std::uint32_t next = 0;  ///< the access this frame assigns
    int cost = 0;            ///< partial cost before assigning it
    std::uint32_t move_begin = 0;
    std::uint32_t move_end = 0;
    std::uint32_t move_cursor = 0;
    std::uint32_t applied_reg = 0;
    std::uint32_t saved_last = 0;
    std::uint8_t saved_direct = 0;
    bool applied_fresh = false;
    bool has_applied = false;
  };

  void reset() {
    states_.assign(ctx_.registers, RegisterState{});
    used_count_ = 0;
    std::fill(assignment_.begin(), assignment_.end(), kUnassigned);
    frames_.clear();
    arena_.clear();
    aborted_ = false;
  }

  /// Applies a pinned prefix and returns its transition cost.
  int replay_prefix(const std::vector<std::size_t>& prefix) {
    reset();
    int cost = 0;
    for (std::size_t i = 0; i < prefix.size(); ++i) {
      RegisterState& state = states_[prefix[i]];
      if (state.used) {
        cost += transition(state.last, i);
        state.last = static_cast<std::uint32_t>(i);
        state.wrap_direct = wrap_cost(i, state.first);
      } else {
        state.used = true;
        state.first = state.last = static_cast<std::uint32_t>(i);
        state.wrap_direct = wrap_cost(i, i);
        state.wrap_horizon = horizon(i);
        ++used_count_;
      }
      assignment_[i] = prefix[i];
    }
    return cost;
  }

  int transition(std::size_t last, std::size_t next) const {
    return intra_transition_cost(ctx_.seq, last, next, ctx_.model);
  }

  /// Wrap cost last -> first: the dense bound table when available
  /// (one read), the cost model otherwise — identical values.
  std::uint8_t wrap_cost(std::size_t last, std::size_t first) const {
    const int cost =
        use_bound_terms_
            ? ctx_.bounds->wrap_direct(last, first)
            : wrap_transition_cost(ctx_.seq, last, first, ctx_.model);
    return static_cast<std::uint8_t>(cost);
  }

  std::size_t horizon(std::size_t first) const {
    return use_bound_terms_ ? ctx_.bounds->wrap_zero_horizon(first) : 0;
  }

  /// Admissible lower bound on partial cost + everything still to pay,
  /// evaluated from the per-register caches alone.
  int lower_bound(std::size_t next, int partial) const {
    if (!use_bound_terms_) return partial;
    const int unused = static_cast<int>(ctx_.registers - used_count_);
    int bound =
        partial +
        std::max(0, ctx_.bounds->cheapest_incoming_suffix(next) - unused);
    for (std::size_t r = 0; r < used_count_; ++r) {
      const RegisterState& s = states_[r];
      if (s.wrap_direct != 0 && next >= s.wrap_horizon) ++bound;
    }
    return bound;
  }

  StateKey state_key(std::size_t next) const {
    StateKey key;
    key.words.fill(~std::uint64_t{0});
    key.words[0] = next;
    for (std::size_t r = 0; r < used_count_; ++r) {
      key.words[1 + r] =
          (static_cast<std::uint64_t>(states_[r].first) << 32) |
          static_cast<std::uint64_t>(states_[r].last);
    }
    return key;
  }

  /// True when the subtree can be cut because the same state was
  /// already reached at no higher cost; records the new cost
  /// otherwise. Parallel tasks share one striped table (every
  /// sibling's states prune here too); a sequential solve keeps its
  /// lock-free private table.
  bool dominated(std::size_t next, int cost) {
    if (!ctx_.use_dominance) return false;
    const StateKey key = state_key(next);
    if (ctx_.shared_table != nullptr) {
      return ctx_.shared_table->dominated(key, cost, local_cap_hits_);
    }
    const auto it = table_.find(key);
    if (it != table_.end()) {
      if (it->second <= cost) return true;
      it->second = cost;
      return false;
    }
    if (table_.size() < table_cap_) {
      table_.emplace(key, cost);
    } else {
      ++local_cap_hits_;
    }
    return false;
  }

  /// Per-node accounting: the node cap is exact; the wall clock, the
  /// cross-task abort flag and the pool's hunger signal are read every
  /// 1024 nodes.
  bool count_node() {
    ++local_nodes_;
    if (flushed_total_ + local_nodes_ > ctx_.max_nodes) {
      abort_solve();
      return false;
    }
    if ((local_nodes_ & 1023) == 0) {
      flush();
      if (ctx_.has_deadline && Clock::now() > ctx_.deadline) {
        abort_solve();
        return false;
      }
      if (ctx_.options.abort.armed() &&
          ctx_.options.abort.should_abort(ctx_.root_lb)) {
        ctx_.external_abort.store(true, std::memory_order_relaxed);
        abort_solve();
        return false;
      }
      if (ctx_.aborted.load(std::memory_order_relaxed)) {
        aborted_ = true;
        return false;
      }
      if (ctx_.pool != nullptr && ctx_.pool->hungry()) {
        donate_subtrees();
      }
    }
    return true;
  }

  /// Feeds starving workers: scanning from the shallowest frame — the
  /// biggest pending subtrees — republish the *last* untried move of
  /// any frame whose subtree still has at least `steal_grain`
  /// unassigned accesses as a stealable pinned-prefix task, removing
  /// it from the owner's candidate range. Taking from the cheap-first
  /// range's tail keeps the owner on the likeliest-best moves; the
  /// shallow-first scan makes stolen work as large as possible.
  /// Donation mutates only this searcher's own frames, so it is safe
  /// at any point of the flat loop.
  void donate_subtrees() {
    runtime::StealPool& pool = *ctx_.pool;
    for (std::size_t f = 0; f < frames_.size() && pool.hungry(); ++f) {
      Frame& frame = frames_[f];
      if (n_ - frame.next < ctx_.steal_grain) {
        break;  // deeper frames have even shorter suffixes
      }
      while (frame.move_cursor < frame.move_end && pool.hungry()) {
        --frame.move_end;
        const Move move = arena_[frame.move_end];
        // Accesses [0, frame.next) are all assigned (each shallower
        // frame has its move applied), and a fresh move's register
        // index was fixed against exactly this prefix at push time —
        // so the donated prefix is a valid fresh-rule pin.
        std::vector<std::size_t> prefix(
            assignment_.begin(),
            assignment_.begin() + static_cast<std::ptrdiff_t>(frame.next));
        prefix.push_back(move.reg);
        SearchContext& ctx = ctx_;
        pool.donate([&ctx, donated = std::move(prefix)] {
          search_subtree(ctx, donated);
        });
      }
    }
  }

  void abort_solve() {
    aborted_ = true;
    ctx_.aborted.store(true, std::memory_order_relaxed);
  }

  void record_leaf(int cost) {
    int total = cost;
    for (std::size_t r = 0; r < used_count_; ++r) {
      total += states_[r].wrap_direct;
    }
    ctx_.record_solution(total, assignment_);
  }

  /// True when registers `a` and `b` are interchangeable for every
  /// possible future: transition and wrap distances depend only on the
  /// endpoint accesses' (offset, stride), so value-identical first and
  /// last accesses make the subtrees isomorphic.
  bool equivalent_registers(std::size_t a, std::size_t b) const {
    return ctx_.seq[states_[a].first] == ctx_.seq[states_[b].first] &&
           ctx_.seq[states_[a].last] == ctx_.seq[states_[b].last];
  }

  /// The visit steps of one node, in the same order (and with the same
  /// node-counting semantics) as the pre-flattening recursive solver:
  /// incumbent/bound prune, budget, leaf, dominance, then a frame with
  /// the ordered moves. True when a frame was pushed.
  bool visit(std::size_t next, int cost) {
    if (aborted_ ||
        lower_bound(next, cost) >=
            ctx_.best_cost.load(std::memory_order_relaxed)) {
      return false;
    }
    if (!count_node()) return false;
    if (next == n_) {
      record_leaf(cost);
      return false;
    }
    if (dominated(next, cost)) return false;
    push_frame(next, cost);
    return true;
  }

  /// Generates the candidate moves of `next` into the arena and pushes
  /// the frame. Used registers occupy indices [0, used_count_): one
  /// move per distinct register state plus at most one fresh opening,
  /// cheapest-first. Legacy keeps plain register-index order.
  void push_frame(std::size_t next, int cost) {
    const std::uint32_t begin = static_cast<std::uint32_t>(arena_.size());
    if (ctx_.legacy) {
      for (std::size_t r = 0; r < ctx_.registers; ++r) {
        if (!states_[r].used) {
          arena_.push_back(Move{static_cast<std::uint32_t>(r), 0, true});
          break;  // only the first unused register ever opens
        }
        arena_.push_back(Move{static_cast<std::uint32_t>(r),
                              transition(states_[r].last, next), false});
      }
    } else {
      for (std::size_t r = 0; r < used_count_; ++r) {
        bool symmetric = false;
        for (std::size_t prior = 0; prior < r && !symmetric; ++prior) {
          symmetric = equivalent_registers(prior, r);
        }
        if (symmetric) continue;
        arena_.push_back(Move{static_cast<std::uint32_t>(r),
                              transition(states_[r].last, next), false});
      }
      if (used_count_ < ctx_.registers) {
        arena_.push_back(
            Move{static_cast<std::uint32_t>(used_count_), 0, true});
      }
      std::stable_sort(arena_.begin() + begin, arena_.end(),
                       [](const Move& a, const Move& b) {
                         if (a.step != b.step) return a.step < b.step;
                         return !a.fresh && b.fresh;
                       });
    }
    Frame frame;
    frame.next = static_cast<std::uint32_t>(next);
    frame.cost = cost;
    frame.move_begin = begin;
    frame.move_end = static_cast<std::uint32_t>(arena_.size());
    frame.move_cursor = begin;
    frames_.push_back(frame);
  }

  void apply_move(Frame& frame, const Move& move) {
    RegisterState& state = states_[move.reg];
    assignment_[frame.next] = move.reg;
    frame.applied_reg = move.reg;
    frame.applied_fresh = move.fresh;
    frame.has_applied = true;
    if (move.fresh) {
      state.used = true;
      state.first = state.last = frame.next;
      state.wrap_direct = wrap_cost(frame.next, frame.next);
      state.wrap_horizon = horizon(frame.next);
      ++used_count_;
    } else {
      frame.saved_last = state.last;
      frame.saved_direct = state.wrap_direct;
      state.last = frame.next;
      state.wrap_direct = wrap_cost(frame.next, state.first);
    }
  }

  void undo_move(Frame& frame) {
    RegisterState& state = states_[frame.applied_reg];
    assignment_[frame.next] = kUnassigned;
    if (frame.applied_fresh) {
      state = RegisterState{};
      --used_count_;
    } else {
      state.last = frame.saved_last;
      state.wrap_direct = frame.saved_direct;
    }
    frame.has_applied = false;
  }

  /// The flat DFS driver: the top frame undoes its applied move, then
  /// either advances to its next candidate or pops (releasing its
  /// arena slice). An abort just unwinds — the incumbent is already
  /// recorded in the context.
  void loop() {
    while (!frames_.empty()) {
      Frame& frame = frames_.back();
      if (frame.has_applied) undo_move(frame);
      if (aborted_ || frame.move_cursor == frame.move_end) {
        arena_.resize(frame.move_begin);
        frames_.pop_back();
        continue;
      }
      const Move move = arena_[frame.move_cursor++];
      apply_move(frame, move);
      visit(frame.next + 1, frame.cost + move.step);
    }
  }

  SearchContext& ctx_;
  const std::size_t n_;
  const std::size_t table_cap_;
  const bool use_bound_terms_;

  std::vector<RegisterState> states_;
  std::size_t used_count_ = 0;
  std::vector<std::size_t> assignment_;
  std::vector<Frame> frames_;
  std::vector<Move> arena_;
  Table table_;

  std::uint64_t local_nodes_ = 0;
  std::uint64_t flushed_total_ = 0;
  std::uint64_t local_cap_hits_ = 0;
  bool aborted_ = false;
};

void search_subtree(SearchContext& ctx,
                    const std::vector<std::size_t>& prefix) {
  if (ctx.aborted.load(std::memory_order_relaxed)) return;
  if (ctx.options.abort.armed() &&
      ctx.options.abort.should_abort(ctx.root_lb)) {
    ctx.external_abort.store(true, std::memory_order_relaxed);
    ctx.aborted.store(true, std::memory_order_relaxed);
    return;
  }
  Searcher searcher(ctx, ctx.table_cap);
  searcher.run(prefix);
}

/// Cheap left-to-right sweep (place each access on the register with
/// the cheapest transition, honoring any pinned prefix) to start the
/// search with a finite incumbent; dramatically improves pruning.
void seed_incumbent_with_greedy_sweep(SearchContext& ctx) {
  struct SweepState {
    bool used = false;
    std::size_t first = 0;
    std::size_t last = 0;
  };
  const ir::AccessSequence& seq = ctx.seq;
  const std::vector<std::size_t>& pinned = ctx.options.pinned_prefix;
  std::vector<SweepState> states(ctx.registers);
  std::vector<std::size_t> assignment(seq.size(), 0);
  int cost = 0;
  for (std::size_t i = 0; i < seq.size(); ++i) {
    std::size_t best_r = 0;
    int best_step = std::numeric_limits<int>::max();
    if (i < pinned.size()) {
      best_r = pinned[i];
      best_step = states[best_r].used
                      ? intra_transition_cost(seq, states[best_r].last, i,
                                              ctx.model)
                      : 0;
    } else {
      for (std::size_t r = 0; r < ctx.registers; ++r) {
        const int step =
            states[r].used
                ? intra_transition_cost(seq, states[r].last, i, ctx.model)
                : 0;
        if (step < best_step) {
          best_step = step;
          best_r = r;
        }
      }
    }
    if (!states[best_r].used) {
      states[best_r] = SweepState{true, i, i};
    } else {
      cost += best_step;
      states[best_r].last = i;
    }
    assignment[i] = best_r;
  }
  for (const SweepState& s : states) {
    if (s.used) {
      cost += wrap_transition_cost(seq, s.last, s.first, ctx.model);
    }
  }
  // The greedy assignment is achievable (it respects the pin), so it
  // is a valid incumbent: the search then only records strictly better
  // solutions, and an exhausted search proves the incumbent optimal.
  ctx.best_cost.store(cost, std::memory_order_relaxed);
  ctx.best_assignment = std::move(assignment);
}

/// Replaces the greedy incumbent with the caller's warm start (e.g.
/// the two-phase heuristic's allocation) when that is cheaper. The
/// warm start must be a valid exact cover: every access on exactly
/// one path (duplicate coverage would double-count total_cost and
/// seed an unachievable incumbent, silently corrupting the proof) —
/// and must agree with any pinned prefix, or the incumbent would not
/// live in the searched subspace.
void seed_incumbent_with_warm_start(SearchContext& ctx) {
  const std::vector<Path>& warm = ctx.options.warm_start;
  if (warm.empty()) return;
  const ir::AccessSequence& seq = ctx.seq;
  std::size_t covered = 0;
  std::vector<std::size_t> assignment(seq.size(), kUnassigned);
  for (std::size_t r = 0; r < warm.size(); ++r) {
    covered += warm[r].size();
    for (std::size_t i = 0; i < warm[r].size(); ++i) {
      const std::size_t access = warm[r][i];
      check_arg(access < seq.size(),
                "exact_min_cost_allocation: warm start access index "
                "out of range");
      assignment[access] = r;
    }
  }
  check_arg(covered == seq.size() &&
                std::find(assignment.begin(), assignment.end(),
                          kUnassigned) == assignment.end() &&
                warm.size() <= ctx.registers,
            "exact_min_cost_allocation: warm start is not a valid "
            "allocation");
  const std::vector<std::size_t>& pinned = ctx.options.pinned_prefix;
  for (std::size_t i = 0; i < pinned.size(); ++i) {
    check_arg(assignment[i] == pinned[i],
              "exact_min_cost_allocation: warm start disagrees with the "
              "pinned prefix");
  }
  const int cost = total_cost(seq, warm, ctx.model);
  if (cost >= ctx.best_cost.load(std::memory_order_relaxed)) return;
  ctx.best_cost.store(cost, std::memory_order_relaxed);
  ctx.best_assignment = std::move(assignment);
}

/// Runs the solve on a work-stealing pool: one root task explores the
/// whole tree, and donation (Searcher::donate_subtrees, driven by
/// StealPool::hungry()) keeps carving stealable subtrees off busy
/// workers for as long as any worker is starving — so deep unbalanced
/// trees rebalance continuously instead of once at the root. All
/// tasks share the incumbent, node budget and a striped transposition
/// table. Fills the pool's schedule-dependent diagnostics into
/// `result`; the proven cost is identical at any jobs level.
void run_parallel(SearchContext& ctx, std::size_t jobs,
                  ExactResult& result) {
  SharedTable shared(ctx.table_cap);
  if (ctx.use_dominance) ctx.shared_table = &shared;
  {
    runtime::StealPool pool(jobs);
    ctx.pool = &pool;
    std::vector<std::size_t> root = ctx.options.pinned_prefix;
    pool.submit([&ctx, seed = std::move(root)] {
      search_subtree(ctx, seed);
    });
    pool.wait_done();
    // All tasks have finished, so no worker can donate or read the
    // pool pointer anymore.
    ctx.pool = nullptr;
    const runtime::StealPoolStats stats = pool.stats();
    result.subtree_tasks = stats.executed;
    result.steals = stats.steals;
    result.steal_attempts = stats.steal_attempts;
    result.splits = stats.donated;
    result.worker_busy_us = stats.busy_us;
    pool.rethrow_first_failure();
  }
  ctx.shared_table = nullptr;
}

ExactResult run_search(const ir::AccessSequence& seq, const CostModel& model,
                       std::size_t registers, const ExactOptions& options) {
  SearchContext ctx(seq, model, registers, options);
  seed_incumbent_with_greedy_sweep(ctx);
  seed_incumbent_with_warm_start(ctx);

  // The root short-circuit belongs to the bounded solver; the legacy
  // baseline must enumerate to prove, as the pre-rebuild DFS did.
  const int root_lb =
      ctx.bounds.has_value() ? ctx.bounds->root_lower_bound(registers) : 0;
  ctx.root_lb = root_lb;
  ExactResult result;
  if (!options.use_bounds ||
      ctx.best_cost.load(std::memory_order_relaxed) > root_lb) {
    // An externally cancelled racer dies before its first node — not
    // just at the 1024-node cadence — so a hopeless solve costs ~zero.
    if (options.abort.armed() && options.abort.should_abort(root_lb)) {
      ctx.external_abort.store(true, std::memory_order_relaxed);
      ctx.aborted.store(true, std::memory_order_relaxed);
    } else {
      ctx.arm_deadline();
      const std::size_t jobs = std::max<std::size_t>(1, options.jobs);
      if (jobs == 1) {
        Searcher searcher(ctx, ctx.table_cap);
        searcher.run(options.pinned_prefix);
      } else {
        run_parallel(ctx, jobs, result);
      }
    }
  }

  result.proven = !ctx.aborted.load(std::memory_order_relaxed);
  result.nodes = ctx.nodes.load(std::memory_order_relaxed);
  result.cost = ctx.best_cost.load(std::memory_order_relaxed);
  result.lower_bound =
      result.proven ? result.cost : std::min(root_lb, result.cost);
  result.table_cap_hits = ctx.cap_hits.load(std::memory_order_relaxed);
  result.external_abort = ctx.external_abort.load(std::memory_order_relaxed);
  std::vector<std::vector<std::size_t>> groups(registers);
  for (std::size_t i = 0; i < seq.size(); ++i) {
    groups[ctx.best_assignment[i]].push_back(i);
  }
  for (auto& group : groups) {
    if (!group.empty()) result.paths.emplace_back(std::move(group));
  }
  return result;
}

}  // namespace

ExactResult exact_min_cost_allocation(const ir::AccessSequence& seq,
                                      const CostModel& model,
                                      std::size_t registers,
                                      const ExactOptions& options) {
  check_arg(registers >= 1,
            "exact_min_cost_allocation: need at least one register");
  if (seq.empty()) {
    ExactResult empty;
    empty.proven = true;
    return empty;
  }

  // More registers than accesses never helps (each access occupies at
  // most one); clamping keeps the state tables small for generous K.
  const std::size_t effective = std::min(registers, seq.size());
  check_arg(options.pinned_prefix.size() <= seq.size(),
            "exact_min_cost_allocation: pinned prefix longer than the "
            "sequence");
  std::size_t opened = 0;
  for (const std::size_t reg : options.pinned_prefix) {
    check_arg(reg < effective,
              "exact_min_cost_allocation: pinned register out of range");
    if (reg == opened) {
      ++opened;
    } else {
      check_arg(reg < opened,
                "exact_min_cost_allocation: pinned prefix must open "
                "registers in increasing order (fresh rule)");
    }
  }

  ExactResult result = run_search(seq, model, effective, options);
  check_invariant(result.cost != std::numeric_limits<int>::max(),
                  "exact_min_cost_allocation: no assignment found");
  validate_allocation(seq, result.paths, registers);
  return result;
}

}  // namespace dspaddr::core
