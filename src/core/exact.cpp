#include "core/exact.hpp"

#include <algorithm>
#include <array>
#include <chrono>
#include <cstdint>
#include <limits>
#include <optional>
#include <unordered_map>

#include "core/bounds.hpp"
#include "core/validate.hpp"
#include "support/check.hpp"

namespace dspaddr::core {

namespace {

/// Entries kept in the transposition table before insertion stops;
/// lookups and in-place improvements continue past the cap, so the
/// search stays correct, only less pruned.
constexpr std::size_t kTableCap = std::size_t{1} << 21;

/// Dominance pruning tracks at most this many register states per key;
/// beyond it the table is disabled (the other prunings keep working).
/// Covers the whole builtin machine catalog (max K = 8).
constexpr std::size_t kMaxDominanceRegisters = 8;

/// Fixed-size, allocation-free transposition key: the next access in
/// words[0], then one (first << 32 | last) word per used register in
/// register order (canonical under the fresh rule — firsts increase
/// with the register index); unused slots hold an all-ones sentinel.
/// 32-bit packing is exact for any sequence that fits in memory.
struct StateKey {
  std::array<std::uint64_t, kMaxDominanceRegisters + 1> words;

  friend bool operator==(const StateKey& a, const StateKey& b) {
    return a.words == b.words;
  }
};

struct StateKeyHash {
  std::size_t operator()(const StateKey& key) const {
    // FNV-1a over the packed words.
    std::uint64_t hash = 1469598103934665603ULL;
    for (const std::uint64_t word : key.words) {
      hash = (hash ^ word) * 1099511628211ULL;
    }
    return static_cast<std::size_t>(hash);
  }
};

class ExactSearch {
 public:
  ExactSearch(const ir::AccessSequence& seq, const CostModel& model,
              std::size_t registers, const ExactOptions& options)
      : seq_(seq),
        model_(model),
        registers_(registers),
        options_(options),
        assignment_(seq.size(), kUnassigned),
        best_assignment_(seq.size(), 0),
        legacy_(!options.use_bounds && !options.use_dominance) {
    // Only the bounded solver reads the O(N^2) tables; the legacy
    // baseline must not pay for (or benefit from) their construction.
    if (options_.use_bounds) {
      bounds_.emplace(seq, model);
    }
  }

  ExactResult run() {
    seed_incumbent_with_greedy_sweep();
    seed_incumbent_with_warm_start();
    states_.assign(registers_, RegisterState{});
    move_scratch_.assign(seq_.size(), {});

    // The root short-circuit belongs to the bounded solver; the legacy
    // baseline must enumerate to prove, as the pre-rebuild DFS did.
    const int root_lb =
        bounds_.has_value() ? bounds_->root_lower_bound(registers_) : 0;
    if (!options_.use_bounds || best_cost_ > root_lb) {
      if (options_.time_budget_ms > 0) {
        deadline_ = Clock::now() +
                    std::chrono::milliseconds(options_.time_budget_ms);
        has_deadline_ = true;
      }
      explore(0, 0);
    }

    ExactResult result;
    result.proven = !aborted_;
    result.nodes = nodes_;
    result.cost = best_cost_;
    result.lower_bound =
        result.proven ? best_cost_ : std::min(root_lb, best_cost_);
    std::vector<std::vector<std::size_t>> groups(registers_);
    for (std::size_t i = 0; i < seq_.size(); ++i) {
      groups[best_assignment_[i]].push_back(i);
    }
    for (auto& group : groups) {
      if (!group.empty()) result.paths.emplace_back(std::move(group));
    }
    return result;
  }

 private:
  using Clock = std::chrono::steady_clock;

  static constexpr std::size_t kUnassigned =
      std::numeric_limits<std::size_t>::max();

  struct RegisterState {
    bool used = false;
    std::size_t first = 0;
    std::size_t last = 0;
  };

  /// Candidate placement of the next access, for cheapest-first
  /// ordering.
  struct Move {
    std::size_t reg = 0;
    int step = 0;
    bool fresh = false;
  };

  /// Cheap left-to-right sweep (place each access on the register with
  /// the cheapest transition) to start the search with a finite
  /// incumbent; dramatically improves pruning.
  void seed_incumbent_with_greedy_sweep() {
    std::vector<RegisterState> states(registers_);
    std::vector<std::size_t> assignment(seq_.size(), 0);
    int cost = 0;
    for (std::size_t i = 0; i < seq_.size(); ++i) {
      std::size_t best_r = 0;
      int best_step = std::numeric_limits<int>::max();
      for (std::size_t r = 0; r < registers_; ++r) {
        const int step =
            states[r].used
                ? intra_transition_cost(seq_, states[r].last, i, model_)
                : 0;
        if (step < best_step) {
          best_step = step;
          best_r = r;
        }
      }
      if (!states[best_r].used) {
        states[best_r] = RegisterState{true, i, i};
      } else {
        cost += best_step;
        states[best_r].last = i;
      }
      assignment[i] = best_r;
    }
    for (const RegisterState& s : states) {
      if (s.used) {
        cost += wrap_transition_cost(seq_, s.last, s.first, model_);
      }
    }
    // The greedy assignment is achievable, so it is a valid incumbent:
    // the search then only records strictly better solutions, and an
    // exhausted search proves the incumbent optimal.
    best_cost_ = cost;
    best_assignment_ = assignment;
  }

  /// Replaces the greedy incumbent with the caller's warm start (e.g.
  /// the two-phase heuristic's allocation) when that is cheaper. The
  /// warm start must be a valid exact cover: every access on exactly
  /// one path (duplicate coverage would double-count total_cost and
  /// seed an unachievable incumbent, silently corrupting the proof).
  void seed_incumbent_with_warm_start() {
    if (options_.warm_start.empty()) return;
    std::size_t covered = 0;
    std::vector<std::size_t> assignment(seq_.size(), kUnassigned);
    for (std::size_t r = 0; r < options_.warm_start.size(); ++r) {
      covered += options_.warm_start[r].size();
      for (std::size_t i = 0; i < options_.warm_start[r].size(); ++i) {
        const std::size_t access = options_.warm_start[r][i];
        check_arg(access < seq_.size(),
                  "exact_min_cost_allocation: warm start access index "
                  "out of range");
        assignment[access] = r;
      }
    }
    check_arg(covered == seq_.size() &&
                  std::find(assignment.begin(), assignment.end(),
                            kUnassigned) == assignment.end() &&
                  options_.warm_start.size() <= registers_,
              "exact_min_cost_allocation: warm start is not a valid "
              "allocation");
    const int cost = total_cost(seq_, options_.warm_start, model_);
    if (cost >= best_cost_) return;
    best_cost_ = cost;
    best_assignment_ = std::move(assignment);
  }

  int wrap_total() const {
    int total = 0;
    for (const RegisterState& s : states_) {
      if (s.used) {
        total += wrap_transition_cost(seq_, s.last, s.first, model_);
      }
    }
    return total;
  }

  /// Admissible lower bound on partial cost + everything still to pay.
  int lower_bound(std::size_t next_access, int partial_cost) const {
    if (!bounds_.has_value()) return partial_cost;
    const int unused = static_cast<int>(registers_ - used_count_);
    int bound = partial_cost +
                std::max(0, bounds_->cheapest_incoming_suffix(next_access) -
                                unused);
    for (std::size_t r = 0; r < used_count_; ++r) {
      bound += bounds_->wrap_floor(states_[r].first, states_[r].last,
                                   next_access);
    }
    return bound;
  }

  StateKey state_key(std::size_t next_access) const {
    StateKey key;
    key.words.fill(~std::uint64_t{0});
    key.words[0] = next_access;
    for (std::size_t r = 0; r < used_count_; ++r) {
      key.words[1 + r] =
          (static_cast<std::uint64_t>(states_[r].first) << 32) |
          static_cast<std::uint64_t>(states_[r].last);
    }
    return key;
  }

  /// True when the subtree can be cut because the same state was
  /// already reached at no higher cost; records the new cost otherwise.
  bool dominated(std::size_t next_access, int partial_cost) {
    if (!options_.use_dominance || registers_ > kMaxDominanceRegisters) {
      return false;
    }
    const StateKey key = state_key(next_access);
    const auto it = table_.find(key);
    if (it != table_.end()) {
      if (it->second <= partial_cost) return true;
      it->second = partial_cost;
      return false;
    }
    if (table_.size() < kTableCap) {
      table_.emplace(key, partial_cost);
    }
    return false;
  }

  bool budget_exhausted() {
    if (++nodes_ > options_.max_nodes) return true;
    if (has_deadline_ && (nodes_ & 1023) == 0 && Clock::now() > deadline_) {
      return true;
    }
    return false;
  }

  /// True when registers `a` and `b` are interchangeable for every
  /// possible future: transition and wrap distances depend only on the
  /// endpoint accesses' (offset, stride), so value-identical first and
  /// last accesses make the subtrees isomorphic.
  bool equivalent_registers(std::size_t a, std::size_t b) const {
    return seq_[states_[a].first] == seq_[states_[b].first] &&
           seq_[states_[a].last] == seq_[states_[b].last];
  }

  void explore(std::size_t next_access, int partial_cost) {
    if (aborted_ || lower_bound(next_access, partial_cost) >= best_cost_) {
      return;
    }
    if (budget_exhausted()) {
      aborted_ = true;
      return;
    }

    if (next_access == seq_.size()) {
      const int total = partial_cost + wrap_total();
      if (total < best_cost_) {
        best_cost_ = total;
        best_assignment_ = assignment_;
      }
      return;
    }
    if (dominated(next_access, partial_cost)) return;

    if (legacy_) {
      explore_children_legacy(next_access, partial_cost);
      return;
    }

    // Used registers occupy indices [0, used_count_): collect one move
    // per distinct register state plus at most one fresh opening, then
    // branch cheapest-first.
    std::vector<Move>& moves = move_scratch_[next_access];
    moves.clear();
    for (std::size_t r = 0; r < used_count_; ++r) {
      bool symmetric = false;
      for (std::size_t prior = 0; prior < r && !symmetric; ++prior) {
        symmetric = equivalent_registers(prior, r);
      }
      if (symmetric) continue;
      moves.push_back(
          Move{r,
               intra_transition_cost(seq_, states_[r].last, next_access,
                                     model_),
               false});
    }
    if (used_count_ < registers_) {
      moves.push_back(Move{used_count_, 0, true});
    }
    std::stable_sort(moves.begin(), moves.end(),
                     [](const Move& a, const Move& b) {
                       if (a.step != b.step) return a.step < b.step;
                       return !a.fresh && b.fresh;
                     });

    for (const Move& move : moves) {
      apply_move(move, next_access, partial_cost);
      if (aborted_) return;
    }
  }

  /// The pre-anytime enumeration (register index order, fresh-register
  /// rule only) — the measurement baseline for bench_exact_gap.
  void explore_children_legacy(std::size_t next_access, int partial_cost) {
    bool opened_fresh_register = false;
    for (std::size_t r = 0; r < registers_; ++r) {
      if (!states_[r].used) {
        if (opened_fresh_register) break;
        opened_fresh_register = true;
        apply_move(Move{r, 0, true}, next_access, partial_cost);
      } else {
        apply_move(
            Move{r,
                 intra_transition_cost(seq_, states_[r].last, next_access,
                                       model_),
                 false},
            next_access, partial_cost);
      }
      if (aborted_) return;
    }
  }

  void apply_move(const Move& move, std::size_t next_access,
                  int partial_cost) {
    RegisterState& state = states_[move.reg];
    assignment_[next_access] = move.reg;
    if (move.fresh) {
      state = RegisterState{true, next_access, next_access};
      ++used_count_;
      explore(next_access + 1, partial_cost);
      --used_count_;
      state = RegisterState{};
    } else {
      const std::size_t saved_last = state.last;
      state.last = next_access;
      explore(next_access + 1, partial_cost + move.step);
      state.last = saved_last;
    }
    assignment_[next_access] = kUnassigned;
  }

  const ir::AccessSequence& seq_;
  const CostModel& model_;
  const std::size_t registers_;
  const ExactOptions& options_;
  std::optional<SuffixBounds> bounds_;

  std::vector<RegisterState> states_;
  std::size_t used_count_ = 0;
  std::vector<std::size_t> assignment_;
  std::vector<std::size_t> best_assignment_;
  int best_cost_ = std::numeric_limits<int>::max();
  std::uint64_t nodes_ = 0;
  bool aborted_ = false;
  const bool legacy_;

  Clock::time_point deadline_;
  bool has_deadline_ = false;
  std::unordered_map<StateKey, int, StateKeyHash> table_;
  /// Per-depth move buffers (avoids an allocation per search node).
  std::vector<std::vector<Move>> move_scratch_;
};

}  // namespace

ExactResult exact_min_cost_allocation(const ir::AccessSequence& seq,
                                      const CostModel& model,
                                      std::size_t registers,
                                      const ExactOptions& options) {
  check_arg(registers >= 1,
            "exact_min_cost_allocation: need at least one register");
  if (seq.empty()) {
    ExactResult empty;
    empty.proven = true;
    return empty;
  }

  // More registers than accesses never helps (each access occupies at
  // most one); clamping keeps the state tables small for generous K.
  ExactSearch search(seq, model, std::min(registers, seq.size()), options);
  ExactResult result = search.run();
  check_invariant(result.cost != std::numeric_limits<int>::max(),
                  "exact_min_cost_allocation: no assignment found");
  validate_allocation(seq, result.paths, registers);
  return result;
}

}  // namespace dspaddr::core
