#include "core/access_graph.hpp"

#include "support/check.hpp"

namespace dspaddr::core {

AccessGraph::AccessGraph(const ir::AccessSequence& seq,
                         const CostModel& model)
    : seq_(seq), model_(model), intra_(seq.size()) {
  check_arg(model.valid(),
            "AccessGraph: modify window [lo, hi] must contain 0");
  const std::size_t n = seq_.size();
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (intra_zero_cost(seq_, i, j, model_)) {
        intra_.add_edge(static_cast<graph::NodeId>(i),
                        static_cast<graph::NodeId>(j));
      }
    }
  }
  wrap_ok_.assign(n * n, false);
  for (std::size_t last = 0; last < n; ++last) {
    for (std::size_t first = 0; first < n; ++first) {
      wrap_ok_[last * n + first] =
          wrap_zero_cost(seq_, last, first, model_);
    }
  }
}

bool AccessGraph::wrap_edge(std::size_t last, std::size_t first) const {
  const std::size_t n = seq_.size();
  check_arg(last < n && first < n, "AccessGraph: node out of range");
  return wrap_ok_[last * n + first];
}

}  // namespace dspaddr::core
