#include "core/validate.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace dspaddr::core {

void validate_allocation(const ir::AccessSequence& seq,
                         const std::vector<Path>& paths,
                         std::size_t register_limit) {
  check_invariant(paths.size() <= register_limit,
                  "allocation: register limit exceeded");
  std::vector<std::size_t> appearances(seq.size(), 0);
  for (const Path& path : paths) {
    check_invariant(!path.empty(), "allocation: empty path");
    for (std::size_t i = 0; i < path.size(); ++i) {
      check_invariant(path[i] < seq.size(),
                      "allocation: access index out of range");
      ++appearances[path[i]];
      if (i + 1 < path.size()) {
        check_invariant(path[i] < path[i + 1],
                        "allocation: path order violated");
      }
    }
  }
  check_invariant(
      std::all_of(appearances.begin(), appearances.end(),
                  [](std::size_t c) { return c == 1; }),
      "allocation: every access must be covered exactly once");
}

}  // namespace dspaddr::core
