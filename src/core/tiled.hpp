// Tiled anytime phase-2 allocation: overlapping windows solved exactly,
// stitched heuristically — the middle rung of the anytime ladder
//   heuristic  <=  tiled  <=  full exact proof.
//
// Long unrolled kernels (50–200 accesses) are far beyond a full exact
// proof, but their structure is local: an access is almost always
// handled by a register that served a nearby access. The tiled solver
// exploits that by sweeping fixed-width windows over the sequence, each
// overlapping its predecessor: the overlap accesses stay pinned to the
// registers the previous window chose (the flat search core's pinned
// prefix, core/exact.hpp), so consecutive windows agree on their shared
// boundary, and each window is solved to proven optimality under the
// acyclic relaxation (wrap costs are meaningless mid-sequence — the
// register keeps running into the next window). Registers newly opened
// by a window are stitched onto globally least-cost physical registers.
//
// The result is exact per window and heuristic across boundaries:
// globally `proven` only when a single window covered the whole
// sequence (then the real cyclic model is used and the solve is a full
// proof). Per-window proofs and gaps are reported so the caller can see
// how much of the ladder was climbed.
#pragma once

#include <cstdint>
#include <vector>

#include "core/cost_model.hpp"
#include "core/exact.hpp"
#include "core/path.hpp"
#include "ir/access_sequence.hpp"

namespace dspaddr::core {

struct TiledOptions {
  /// Accesses per window (>= 2). Sequences at most this long are
  /// solved as a single window under the real model — a full proof.
  /// With `auto_width` this is only the starting width.
  std::size_t tile_width = 20;
  /// Accesses shared between consecutive windows (< tile_width); the
  /// overlap is pinned to the previous window's assignment.
  std::size_t tile_overlap = 6;
  /// Window-width auto-tuning (`--phase2-window=auto`): the sweep
  /// starts at `tile_width` and re-sizes every subsequent window from
  /// measured effort — a window that proved using under a quarter of
  /// its node slice (or, under a wall budget, of the nodes the
  /// measured nodes/ms says the next slice can afford) widens the
  /// next one ~50%, an unproven window narrows it ~33% — within
  /// [min_width, max_width] (clamped to stay above the overlap). The
  /// chosen widths are reported in TiledResult::window_widths.
  /// Deterministic for a fixed problem when `time_budget_ms == 0` and
  /// `jobs == 1`; the wall-clock calibration is machine-dependent by
  /// nature.
  bool auto_width = false;
  std::size_t min_width = 10;
  std::size_t max_width = 48;
  /// Node budget, split evenly across windows.
  std::uint64_t max_nodes = 2'000'000;
  /// Wall-clock budget in milliseconds (0 disables), split across the
  /// remaining windows as the sweep progresses.
  std::int64_t time_budget_ms = 0;
  /// Worker threads of each window's search (ExactOptions::jobs).
  std::size_t jobs = 1;
  /// Donated-subtree grain of each window's parallel search
  /// (ExactOptions::steal_grain); 0 uses the built-in default.
  std::size_t steal_grain = 0;
  /// External cancellation, forwarded to every window's exact solve
  /// (SearchAbortHook). A cancelled sweep keeps the stitched allocation
  /// built so far plus the heuristic completion of the rest.
  SearchAbortHook abort;
};

struct TiledResult {
  std::vector<Path> paths;
  /// Total cost of the stitched allocation under the real model.
  int cost = 0;
  /// True only when one window covered the whole sequence and its
  /// solve completed — then `cost` is provably minimal.
  bool proven = false;
  std::uint64_t nodes = 0;
  std::uint64_t table_cap_hits = 0;
  std::uint64_t subtree_tasks = 0;
  /// Work-stealing diagnostics summed over every window's solve
  /// (see ExactResult; all 0 at jobs == 1, schedule-dependent above).
  std::uint64_t steals = 0;
  std::uint64_t steal_attempts = 0;
  std::uint64_t splits = 0;
  /// Summed ExactResult::worker_busy_us (machine-dependent, never
  /// serialized).
  std::uint64_t worker_busy_us = 0;
  std::size_t windows = 0;
  /// Width (in accesses, overlap included) of each window the sweep
  /// actually solved, in order — the auto-tuner's decisions made
  /// observable (fixed-width sweeps report the constant width).
  std::vector<std::size_t> window_widths;
  /// Windows whose exact solve completed (proved optimal *within the
  /// window*, given its pinned boundary).
  std::size_t windows_proven = 0;
  /// Sum of the per-window anytime gaps (0 when every window proved).
  int window_gap_total = 0;
  /// True when TiledOptions::abort cancelled at least one window's
  /// solve (ExactResult::external_abort).
  bool external_abort = false;
};

/// Tiled allocation of `seq` onto at most `registers` address registers
/// under `model`. `registers` must be >= 1.
TiledResult tiled_min_cost_allocation(const ir::AccessSequence& seq,
                                      const CostModel& model,
                                      std::size_t registers,
                                      const TiledOptions& options = {});

}  // namespace dspaddr::core
