#include "core/forced_edges.hpp"

#include "graph/matching.hpp"

namespace dspaddr::core {

namespace {

using BipartiteEdges =
    std::vector<std::pair<std::uint32_t, std::uint32_t>>;

std::size_t matching_size(std::size_t n, const BipartiteEdges& edges) {
  return graph::hopcroft_karp(n, n, edges).size;
}

}  // namespace

const char* to_string(EdgeRole role) {
  switch (role) {
    case EdgeRole::kMandatory:
      return "mandatory";
    case EdgeRole::kOptional:
      return "optional";
    case EdgeRole::kUseless:
      return "useless";
  }
  return "unknown";
}

std::vector<ClassifiedEdge> classify_edges(const AccessGraph& graph) {
  const std::size_t n = graph.node_count();
  BipartiteEdges all;
  for (const auto& [from, to] : graph.intra().edges()) {
    all.emplace_back(from, to);
  }
  const std::size_t base = matching_size(n, all);

  std::vector<ClassifiedEdge> classified;
  classified.reserve(all.size());
  for (std::size_t e = 0; e < all.size(); ++e) {
    const auto [from, to] = all[e];
    ClassifiedEdge entry;
    entry.from = from;
    entry.to = to;

    // Without e: does the maximum matching shrink?
    BipartiteEdges without;
    without.reserve(all.size() - 1);
    for (std::size_t other = 0; other < all.size(); ++other) {
      if (other != e) without.push_back(all[other]);
    }
    if (matching_size(n, without) < base) {
      entry.role = EdgeRole::kMandatory;
    } else {
      // Forcing e: match (from, to), drop both endpoints, re-match the
      // rest; e is usable by some maximum matching iff the total still
      // reaches base.
      BipartiteEdges forced;
      for (const auto& [u, v] : all) {
        if (u != from && v != to) forced.emplace_back(u, v);
      }
      entry.role = (1 + matching_size(n, forced) == base)
                       ? EdgeRole::kOptional
                       : EdgeRole::kUseless;
    }
    classified.push_back(entry);
  }
  return classified;
}

std::size_t mandatory_edge_count(const AccessGraph& graph) {
  std::size_t count = 0;
  for (const ClassifiedEdge& edge : classify_edges(graph)) {
    if (edge.role == EdgeRole::kMandatory) ++count;
  }
  return count;
}

}  // namespace dspaddr::core
