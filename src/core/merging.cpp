#include "core/merging.hpp"

#include <limits>
#include <queue>
#include <tuple>

#include "support/check.hpp"

namespace dspaddr::core {

const char* to_string(MergeStrategy strategy) {
  switch (strategy) {
    case MergeStrategy::kMinMergedCost:
      return "min-merged-cost";
    case MergeStrategy::kMinDelta:
      return "min-delta";
    case MergeStrategy::kFirstPair:
      return "first-pair";
    case MergeStrategy::kRandomPair:
      return "random-pair";
  }
  return "unknown";
}

namespace {

/// Cost-guided merging with a lazily invalidated pair heap.
///
/// Slots hold live paths; merging replaces the lower slot and kills the
/// higher one. Heap entries carry the slot versions they were computed
/// for and are dropped when stale. Keys order by (cost key, slot a,
/// slot b) so selection is deterministic.
class CostGuidedMerger {
public:
  CostGuidedMerger(const ir::AccessSequence& seq, const CostModel& model,
                   std::vector<Path> paths, bool use_delta, bool build_heap)
      : seq_(seq), model_(model), use_delta_(use_delta),
        heap_enabled_(build_heap) {
    slots_.reserve(paths.size());
    for (Path& p : paths) {
      slot_cost_.push_back(path_cost(seq_, p, model_));
      slots_.push_back(std::move(p));
    }
    version_.assign(slots_.size(), 0);
    alive_.assign(slots_.size(), true);
    alive_count_ = slots_.size();
    if (heap_enabled_) {
      for (std::size_t a = 0; a < slots_.size(); ++a) {
        for (std::size_t b = a + 1; b < slots_.size(); ++b) {
          push_pair(a, b);
        }
      }
    }
  }

  std::size_t alive_count() const { return alive_count_; }

  /// Executes the best merge; returns the executed step.
  MergeStep merge_best() {
    check_invariant(alive_count_ >= 2, "merge_best: fewer than two paths");
    while (true) {
      check_invariant(!heap_.empty(), "merge_best: exhausted pair heap");
      const Entry top = heap_.top();
      heap_.pop();
      if (!alive_[top.a] || !alive_[top.b] ||
          version_[top.a] != top.version_a ||
          version_[top.b] != top.version_b) {
        continue;
      }
      return execute(top.a, top.b, top.merged_cost);
    }
  }

  /// Executes an externally chosen merge of slots a != b.
  MergeStep merge_pair(std::size_t a, std::size_t b) {
    check_arg(a != b && alive_[a] && alive_[b],
              "merge_pair: slots must be two live paths");
    if (a > b) std::swap(a, b);
    const Path merged = merge(slots_[a], slots_[b]);
    return execute(a, b, path_cost(seq_, merged, model_));
  }

  /// Slot ids of all live paths, ascending.
  std::vector<std::size_t> live_slots() const {
    std::vector<std::size_t> live;
    for (std::size_t s = 0; s < slots_.size(); ++s) {
      if (alive_[s]) live.push_back(s);
    }
    return live;
  }

  std::vector<Path> take_paths() {
    std::vector<Path> result;
    for (std::size_t s = 0; s < slots_.size(); ++s) {
      if (alive_[s]) result.push_back(std::move(slots_[s]));
    }
    return result;
  }

  int total_cost() const {
    int cost = 0;
    for (std::size_t s = 0; s < slots_.size(); ++s) {
      if (alive_[s]) cost += slot_cost_[s];
    }
    return cost;
  }

private:
  struct Entry {
    int key;
    std::size_t a, b;
    std::uint32_t version_a, version_b;
    int merged_cost;

    bool operator>(const Entry& other) const {
      return std::tie(key, a, b) > std::tie(other.key, other.a, other.b);
    }
  };

  void push_pair(std::size_t a, std::size_t b) {
    const Path merged = merge(slots_[a], slots_[b]);
    const int merged_cost = path_cost(seq_, merged, model_);
    const int key = use_delta_
                        ? merged_cost - slot_cost_[a] - slot_cost_[b]
                        : merged_cost;
    heap_.push(Entry{key, a, b, version_[a], version_[b], merged_cost});
  }

  MergeStep execute(std::size_t a, std::size_t b, int merged_cost) {
    MergeStep step;
    step.first_path = a;
    step.second_path = b;
    step.merged_cost = merged_cost;

    slots_[a] = merge(slots_[a], slots_[b]);
    slot_cost_[a] = merged_cost;
    ++version_[a];
    alive_[b] = false;
    ++version_[b];
    --alive_count_;

    if (heap_enabled_) {
      for (std::size_t s = 0; s < slots_.size(); ++s) {
        if (alive_[s] && s != a) {
          push_pair(std::min(s, a), std::max(s, a));
        }
      }
    }
    step.total_cost_after = total_cost();
    return step;
  }

  const ir::AccessSequence& seq_;
  const CostModel& model_;
  const bool use_delta_;
  const bool heap_enabled_;

  std::vector<Path> slots_;
  std::vector<int> slot_cost_;
  std::vector<std::uint32_t> version_;
  std::vector<bool> alive_;
  std::size_t alive_count_ = 0;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> heap_;
};

}  // namespace

std::vector<Path> merge_to_register_limit(
    const ir::AccessSequence& seq, const CostModel& model,
    std::vector<Path> paths, std::size_t register_limit,
    const MergeOptions& options, std::vector<MergeStep>* trace) {
  check_arg(register_limit >= 1, "merge_to_register_limit: need >= 1 register");
  if (paths.size() <= register_limit) return paths;

  const bool cost_guided =
      options.strategy == MergeStrategy::kMinMergedCost ||
      options.strategy == MergeStrategy::kMinDelta;
  CostGuidedMerger merger(seq, model, std::move(paths),
                          options.strategy == MergeStrategy::kMinDelta,
                          /*build_heap=*/cost_guided);
  support::Rng rng(options.seed);

  while (merger.alive_count() > register_limit) {
    MergeStep step;
    if (cost_guided) {
      step = merger.merge_best();
    } else {
      const std::vector<std::size_t> live = merger.live_slots();
      std::size_t a = 0;
      std::size_t b = 1;
      if (options.strategy == MergeStrategy::kRandomPair) {
        a = rng.index(live.size());
        b = rng.index(live.size() - 1);
        if (b >= a) ++b;
      }
      step = merger.merge_pair(live[a], live[b]);
    }
    if (trace != nullptr) trace->push_back(step);
  }
  return merger.take_paths();
}

}  // namespace dspaddr::core
