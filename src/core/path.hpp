// Paths over the access sequence and the order-preserving merge
// operation "⊕" (paper section 3.2).
//
// A Path is the ordered subsequence of accesses assigned to one address
// register, stored as strictly increasing access indices. Merging two
// paths interleaves them back into original sequence order:
//   (a1, a4, a6) ⊕ (a3, a5)  =  (a1, a3, a4, a5, a6)
// The path cost C(P) is the number of unit-cost address computations the
// register performs per steady-state iteration: unit-cost intra
// transitions plus (under WrapPolicy::kCyclic) the unit-cost wrap
// transition from the path's last access back to its first.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/cost_model.hpp"
#include "ir/access_sequence.hpp"

namespace dspaddr::core {

/// Ordered subsequence of access indices handled by one register.
class Path {
public:
  Path() = default;
  /// `indices` must be strictly increasing.
  explicit Path(std::vector<std::size_t> indices);

  static Path singleton(std::size_t index);

  std::size_t size() const { return indices_.size(); }
  bool empty() const { return indices_.empty(); }
  std::size_t operator[](std::size_t i) const;
  const std::vector<std::size_t>& indices() const { return indices_; }

  std::size_t first() const;
  std::size_t last() const;

  /// Appends an index greater than last().
  void append(std::size_t index);

  /// Order-preserving merge; the operand index sets must be disjoint.
  friend Path merge(const Path& a, const Path& b);

  friend bool operator==(const Path& a, const Path& b) {
    return a.indices_ == b.indices_;
  }
  friend bool operator!=(const Path& a, const Path& b) { return !(a == b); }

  /// "(a_1, a_3, a_5)"-style rendering with 1-based access names.
  std::string to_string() const;

private:
  std::vector<std::size_t> indices_;
};

/// Order-preserving merge of two disjoint paths (declared as friend).
Path merge(const Path& a, const Path& b);

/// C(P): unit-cost address computations per iteration for path `p`.
int path_cost(const ir::AccessSequence& seq, const Path& p,
              const CostModel& model);

/// Number of unit-cost intra-iteration transitions of `p`.
int path_intra_cost(const ir::AccessSequence& seq, const Path& p,
                    const CostModel& model);

/// 0/1 wrap cost of `p` (0 under kAcyclic or for empty paths).
int path_wrap_cost(const ir::AccessSequence& seq, const Path& p,
                   const CostModel& model);

/// Total cost of a set of paths.
int total_cost(const ir::AccessSequence& seq, const std::vector<Path>& paths,
               const CostModel& model);

}  // namespace dspaddr::core
