#include "core/modify_registers.hpp"

#include <algorithm>
#include <cstdlib>
#include <map>
#include <tuple>

#include "support/check.hpp"

namespace dspaddr::core {

ModifyRegisterPlan plan_modify_registers(const ir::AccessSequence& seq,
                                         const Allocation& allocation,
                                         std::size_t mr_count) {
  const CostModel& model = allocation.model();

  // Histogram of constant distances of over-range transitions, each
  // credited its *actual* cost under the model — crediting a flat 1 per
  // entry would mis-account any transition the cost model charges
  // differently and could drive residual_cost negative.
  std::map<std::int64_t, int> histogram;
  for (const Path& path : allocation.paths()) {
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
      const int cost =
          intra_transition_cost(seq, path[i], path[i + 1], model);
      if (cost == 0) continue;
      const auto d = seq.intra_distance(path[i], path[i + 1]);
      if (d.has_value()) histogram[*d] += cost;
    }
    if (!path.empty()) {
      const int cost =
          wrap_transition_cost(seq, path.last(), path.first(), model);
      if (cost != 0) {
        const auto d = seq.wrap_distance(path.last(), path.first());
        if (d.has_value()) histogram[*d] += cost;
      }
    }
  }

  std::vector<ModifyRegister> candidates;
  candidates.reserve(histogram.size());
  for (const auto& [value, count] : histogram) {
    candidates.push_back(ModifyRegister{value, count});
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const ModifyRegister& a, const ModifyRegister& b) {
              return std::make_tuple(-a.covered, std::llabs(a.value),
                                     a.value) <
                     std::make_tuple(-b.covered, std::llabs(b.value),
                                     b.value);
            });
  if (candidates.size() > mr_count) candidates.resize(mr_count);

  ModifyRegisterPlan plan;
  plan.values = std::move(candidates);
  for (const ModifyRegister& mr : plan.values) {
    plan.covered_per_iteration += mr.covered;
  }
  plan.residual_cost = allocation.cost() - plan.covered_per_iteration;
  check_invariant(plan.residual_cost >= 0,
                  "plan_modify_registers: negative residual cost");
  return plan;
}

}  // namespace dspaddr::core
