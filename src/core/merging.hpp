// Phase 2: meeting the register constraint by path merging (paper
// section 3.2).
//
// While more paths exist than physical address registers, two paths are
// merged with the order-preserving operation "⊕". The paper's selection
// rule picks the pair (P_i, P_j) whose merged cost C(P_i ⊕ P_j) is
// minimal among all pairs; alternative rules are provided for the
// ablation bench (T4) and for the naive baseline the paper compares
// against.
#pragma once

#include <cstdint>
#include <vector>

#include "core/cost_model.hpp"
#include "core/path.hpp"
#include "support/rng.hpp"

namespace dspaddr::core {

/// Pair-selection rule for one merge step.
enum class MergeStrategy {
  /// The paper's rule: minimize C(P_i ⊕ P_j) over all pairs.
  kMinMergedCost,
  /// Minimize the cost increase C(P_i ⊕ P_j) - C(P_i) - C(P_j).
  kMinDelta,
  /// Always merge the first two paths — the paper's "naive" baseline
  /// ("repetitively merges two arbitrary paths").
  kFirstPair,
  /// Merge a uniformly random pair (seeded) — alternative arbitrary
  /// baseline.
  kRandomPair,
};

const char* to_string(MergeStrategy strategy);

/// One executed merge, for tracing/ablation.
struct MergeStep {
  std::size_t first_path = 0;
  std::size_t second_path = 0;
  int merged_cost = 0;
  int total_cost_after = 0;
};

struct MergeOptions {
  MergeStrategy strategy = MergeStrategy::kMinMergedCost;
  /// Seed for kRandomPair.
  std::uint64_t seed = 1;
};

/// Merges `paths` down to at most `register_limit` paths and returns the
/// result. `register_limit` must be >= 1. If `trace` is non-null, every
/// merge step is appended to it.
std::vector<Path> merge_to_register_limit(
    const ir::AccessSequence& seq, const CostModel& model,
    std::vector<Path> paths, std::size_t register_limit,
    const MergeOptions& options = {}, std::vector<MergeStep>* trace = nullptr);

}  // namespace dspaddr::core
