// Modify-register planning — an AGU extension beyond the paper.
//
// Real DSP AGUs (TI C5x, ADSP-21xx, ...) pair address registers with
// *modify registers*: `*(ARr)+MRm` post-modifies ARr by the contents of
// MRm in parallel with the data path, for free, whatever the distance.
// Loading an MR costs one setup instruction before the loop. A
// transition the paper charges as unit-cost (same stride, |d| > M)
// therefore becomes free if some MR already holds exactly d.
//
// Planning which L values to load is a set-cover-by-frequency problem
// on the multiset of over-range transition distances of an allocation;
// with each transition covered by exactly one value (its own distance),
// the greedy top-L-by-frequency choice is optimal for a fixed
// allocation. (Co-optimizing the allocation itself against available
// MRs is future work the paper hints at via its AGU generality; the
// ablation bench quantifies how much the simple post-pass already
// recovers.)
#pragma once

#include <cstdint>
#include <vector>

#include "core/allocator.hpp"
#include "core/path.hpp"

namespace dspaddr::core {

/// One planned modify register.
struct ModifyRegister {
  std::int64_t value = 0;
  /// Address-computation cost per iteration this value eliminates (the
  /// summed actual transition costs, not a flat per-transition count).
  int covered = 0;
};

/// Result of planning `mr_count` modify registers for an allocation.
struct ModifyRegisterPlan {
  std::vector<ModifyRegister> values;
  /// Address-computation cost eliminated per iteration (sum of covered).
  int covered_per_iteration = 0;
  /// Allocation cost remaining after the plan.
  int residual_cost = 0;
};

/// Plans up to `mr_count` modify-register values for `allocation` on
/// `seq`: collects the distances of all unit-cost transitions with a
/// constant distance (same-stride intra and wrap moves beyond M;
/// different-stride reloads cannot be MR-covered) and picks the most
/// frequent ones. Deterministic: ties broken towards smaller |value|,
/// then smaller value.
ModifyRegisterPlan plan_modify_registers(const ir::AccessSequence& seq,
                                         const Allocation& allocation,
                                         std::size_t mr_count);

}  // namespace dspaddr::core
