#include "core/cost_model.hpp"

#include <cstdlib>

namespace dspaddr::core {

namespace {

bool within_range(std::optional<std::int64_t> distance, std::int64_t range) {
  return distance.has_value() && std::llabs(*distance) <= range;
}

}  // namespace

int intra_transition_cost(const ir::AccessSequence& seq, std::size_t p,
                          std::size_t q, const CostModel& model) {
  return within_range(seq.intra_distance(p, q), model.modify_range) ? 0 : 1;
}

int wrap_transition_cost(const ir::AccessSequence& seq, std::size_t last,
                         std::size_t first, const CostModel& model) {
  if (model.wrap == WrapPolicy::kAcyclic) return 0;
  return within_range(seq.wrap_distance(last, first), model.modify_range)
             ? 0
             : 1;
}

bool intra_zero_cost(const ir::AccessSequence& seq, std::size_t p,
                     std::size_t q, const CostModel& model) {
  return intra_transition_cost(seq, p, q, model) == 0;
}

bool wrap_zero_cost(const ir::AccessSequence& seq, std::size_t last,
                    std::size_t first, const CostModel& model) {
  return wrap_transition_cost(seq, last, first, model) == 0;
}

}  // namespace dspaddr::core
