#include "core/cost_model.hpp"

namespace dspaddr::core {

namespace {

bool free_transition(std::optional<std::int64_t> distance,
                     const CostModel& model) {
  return distance.has_value() && model.free_distance(*distance);
}

}  // namespace

int intra_transition_cost(const ir::AccessSequence& seq, std::size_t p,
                          std::size_t q, const CostModel& model) {
  return free_transition(seq.intra_distance(p, q), model) ? 0 : 1;
}

int wrap_transition_cost(const ir::AccessSequence& seq, std::size_t last,
                         std::size_t first, const CostModel& model) {
  if (model.wrap == WrapPolicy::kAcyclic) return 0;
  return free_transition(seq.wrap_distance(last, first), model) ? 0 : 1;
}

bool intra_zero_cost(const ir::AccessSequence& seq, std::size_t p,
                     std::size_t q, const CostModel& model) {
  return intra_transition_cost(seq, p, q, model) == 0;
}

bool wrap_zero_cost(const ir::AccessSequence& seq, std::size_t last,
                    std::size_t first, const CostModel& model) {
  return wrap_transition_cost(seq, last, first, model) == 0;
}

}  // namespace dspaddr::core
