#include "core/path.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace dspaddr::core {

Path::Path(std::vector<std::size_t> indices) : indices_(std::move(indices)) {
  check_arg(std::adjacent_find(indices_.begin(), indices_.end(),
                               std::greater_equal<std::size_t>{}) ==
                indices_.end(),
            "Path: indices must be strictly increasing");
}

Path Path::singleton(std::size_t index) {
  return Path(std::vector<std::size_t>{index});
}

std::size_t Path::operator[](std::size_t i) const {
  check_arg(i < indices_.size(), "Path: position out of range");
  return indices_[i];
}

std::size_t Path::first() const {
  check_arg(!indices_.empty(), "Path: first() on empty path");
  return indices_.front();
}

std::size_t Path::last() const {
  check_arg(!indices_.empty(), "Path: last() on empty path");
  return indices_.back();
}

void Path::append(std::size_t index) {
  check_arg(indices_.empty() || index > indices_.back(),
            "Path: appended index must exceed the current last index");
  indices_.push_back(index);
}

Path merge(const Path& a, const Path& b) {
  std::vector<std::size_t> merged;
  merged.reserve(a.size() + b.size());
  std::merge(a.indices_.begin(), a.indices_.end(), b.indices_.begin(),
             b.indices_.end(), std::back_inserter(merged));
  check_arg(std::adjacent_find(merged.begin(), merged.end()) == merged.end(),
            "merge: paths must be node-disjoint");
  return Path(std::move(merged));
}

std::string Path::to_string() const {
  std::string out = "(";
  for (std::size_t i = 0; i < indices_.size(); ++i) {
    if (i > 0) out += ", ";
    out += "a_" + std::to_string(indices_[i] + 1);
  }
  out += ")";
  return out;
}

int path_intra_cost(const ir::AccessSequence& seq, const Path& p,
                    const CostModel& model) {
  int cost = 0;
  for (std::size_t i = 0; i + 1 < p.size(); ++i) {
    cost += intra_transition_cost(seq, p[i], p[i + 1], model);
  }
  return cost;
}

int path_wrap_cost(const ir::AccessSequence& seq, const Path& p,
                   const CostModel& model) {
  if (p.empty()) return 0;
  return wrap_transition_cost(seq, p.last(), p.first(), model);
}

int path_cost(const ir::AccessSequence& seq, const Path& p,
              const CostModel& model) {
  return path_intra_cost(seq, p, model) + path_wrap_cost(seq, p, model);
}

int total_cost(const ir::AccessSequence& seq, const std::vector<Path>& paths,
               const CostModel& model) {
  int cost = 0;
  for (const Path& p : paths) {
    cost += path_cost(seq, p, model);
  }
  return cost;
}

}  // namespace dspaddr::core
