// Phase 1: exact computation of K~, the minimum number of virtual
// address registers admitting a zero-cost allocation (paper section 3.1
// and the companion paper [3]).
//
// The search assigns accesses in sequence order to open paths; an access
// may extend any open path reachable by a zero-cost intra edge or open a
// new path. A complete assignment is feasible iff every path also closes
// (wraps) at zero cost. Branches are pruned against the best incumbent
// (seeded by the greedy upper bound) and the search stops early when the
// incumbent meets the matching lower bound.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/access_graph.hpp"
#include "core/bounds.hpp"
#include "core/path.hpp"

namespace dspaddr::core {

/// Controls the phase-1 search.
struct Phase1Options {
  enum class Mode {
    /// Exact B&B up to `exact_node_limit` accesses, greedy beyond.
    kAuto,
    /// Always run the exact search (subject to `max_search_nodes`).
    kExact,
    /// Only the greedy upper bound (no optimality proof).
    kHeuristic,
  };

  Mode mode = Mode::kAuto;
  /// kAuto switches to the heuristic above this many accesses.
  std::size_t exact_node_limit = 28;
  /// Hard cap on explored search nodes; hitting it degrades `exact` to
  /// false but keeps the best incumbent found.
  std::uint64_t max_search_nodes = 5'000'000;
};

/// Result of phase 1.
struct Phase1Result {
  /// A zero-cost cover of size k_tilde when one exists; otherwise the
  /// acyclic-optimal cover (minimum intra-cost paths, wrap possibly
  /// unit-cost) as the starting point for phase 2.
  std::vector<Path> cover;
  /// K~, when a zero-cost cover exists (always under kAcyclic; under
  /// kCyclic it may not, e.g. when |stride| > M for some access).
  std::optional<std::size_t> k_tilde;
  /// Matching lower bound on K~.
  std::size_t lower_bound = 0;
  /// Greedy upper bound (cover size), when the greedy found a cover.
  std::optional<std::size_t> upper_bound;
  /// True when the result is provably optimal (or provably infeasible).
  bool exact = false;
  /// Search nodes explored by the B&B (0 when it did not run).
  std::uint64_t search_nodes = 0;
};

/// Runs phase 1 on the access graph.
Phase1Result compute_min_register_cover(const AccessGraph& graph,
                                        const Phase1Options& options = {});

}  // namespace dspaddr::core
