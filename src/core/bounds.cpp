#include "core/bounds.hpp"

#include <algorithm>
#include <cstdlib>
#include <limits>

#include "graph/path_cover.hpp"
#include "support/check.hpp"

namespace dspaddr::core {

namespace {

std::vector<Path> to_paths(const graph::PathCover& cover) {
  std::vector<Path> paths;
  paths.reserve(cover.paths.size());
  for (const auto& nodes : cover.paths) {
    std::vector<std::size_t> indices(nodes.begin(), nodes.end());
    paths.emplace_back(std::move(indices));
  }
  return paths;
}

/// Splits a path whose intra transitions are all zero-cost into the
/// minimum number of contiguous chunks that each close (wrap) at zero
/// cost. Returns nullopt when no such partition exists.
std::optional<std::vector<Path>> split_for_zero_wrap(
    const AccessGraph& graph, const Path& path) {
  const std::size_t m = path.size();
  constexpr std::size_t kInf = std::numeric_limits<std::size_t>::max();
  // chunks_up_to[j]: min chunks covering path positions [0, j); the
  // chunk ending at position j-1 must start at some position i with
  // wrap_edge(path[j-1], path[i]).
  std::vector<std::size_t> chunks_up_to(m + 1, kInf);
  std::vector<std::size_t> chunk_start(m + 1, 0);
  chunks_up_to[0] = 0;
  for (std::size_t j = 1; j <= m; ++j) {
    for (std::size_t i = 0; i < j; ++i) {
      if (chunks_up_to[i] == kInf) continue;
      if (!graph.wrap_edge(path[j - 1], path[i])) continue;
      if (chunks_up_to[i] + 1 < chunks_up_to[j]) {
        chunks_up_to[j] = chunks_up_to[i] + 1;
        chunk_start[j] = i;
      }
    }
  }
  if (chunks_up_to[m] == kInf) return std::nullopt;

  std::vector<Path> chunks;
  std::size_t end = m;
  while (end > 0) {
    const std::size_t start = chunk_start[end];
    std::vector<std::size_t> indices;
    indices.reserve(end - start);
    for (std::size_t i = start; i < end; ++i) {
      indices.push_back(path[i]);
    }
    chunks.emplace_back(std::move(indices));
    end = start;
  }
  std::reverse(chunks.begin(), chunks.end());
  return chunks;
}

}  // namespace

std::size_t lower_bound_registers(const AccessGraph& graph) {
  return graph::minimum_path_cover_dag(graph.intra()).path_count();
}

std::vector<Path> acyclic_optimal_cover(const AccessGraph& graph) {
  return to_paths(graph::minimum_path_cover_dag(graph.intra()));
}

std::optional<std::vector<Path>> greedy_zero_cost_cover(
    const AccessGraph& graph) {
  const ir::AccessSequence& seq = graph.sequence();
  const CostModel& model = graph.model();
  const std::size_t n = seq.size();

  std::vector<Path> open;
  for (std::size_t i = 0; i < n; ++i) {
    std::size_t best = open.size();
    std::int64_t best_distance = std::numeric_limits<std::int64_t>::max();
    bool best_closable = false;
    for (std::size_t p = 0; p < open.size(); ++p) {
      if (!intra_zero_cost(seq, open[p].last(), i, model)) continue;
      const std::int64_t distance =
          std::llabs(*seq.intra_distance(open[p].last(), i));
      const bool closable = graph.wrap_edge(i, open[p].first());
      // Prefer a path that could close at zero cost if `i` became its
      // final access; among those, the nearest endpoint.
      if (best == open.size() || (closable && !best_closable) ||
          (closable == best_closable && distance < best_distance)) {
        best = p;
        best_distance = distance;
        best_closable = closable;
      }
    }
    if (best == open.size()) {
      open.push_back(Path::singleton(i));
    } else {
      open[best].append(i);
    }
  }

  if (model.wrap == WrapPolicy::kAcyclic) return open;

  // Repair: split any path whose wrap transition is unit-cost.
  std::vector<Path> result;
  for (const Path& path : open) {
    if (path_wrap_cost(seq, path, model) == 0) {
      result.push_back(path);
      continue;
    }
    auto chunks = split_for_zero_wrap(graph, path);
    if (!chunks.has_value()) return std::nullopt;
    for (Path& chunk : *chunks) {
      result.push_back(std::move(chunk));
    }
  }
  return result;
}

SuffixBounds::SuffixBounds(const ir::AccessSequence& seq,
                           const CostModel& model)
    : n_(seq.size()), dense_(seq.size() <= kDenseLimit) {
  constexpr int kNoFinal = std::numeric_limits<int>::max();
  if (!dense_) return;

  std::vector<int> cheapest_incoming(n_, 0);
  for (std::size_t j = 1; j < n_; ++j) {
    int best = std::numeric_limits<int>::max();
    for (std::size_t p = 0; p < j && best > 0; ++p) {
      best = std::min(best, intra_transition_cost(seq, p, j, model));
    }
    cheapest_incoming[j] = best;
  }
  suffix_incoming_.assign(n_ + 1, 0);
  for (std::size_t t = n_; t-- > 0;) {
    suffix_incoming_[t] = suffix_incoming_[t + 1] + cheapest_incoming[t];
  }

  wrap_direct_.assign(n_ * n_, 0);
  for (std::size_t l = 0; l < n_; ++l) {
    for (std::size_t f = 0; f < n_; ++f) {
      wrap_direct_[l * n_ + f] = wrap_transition_cost(seq, l, f, model);
    }
  }
  wrap_suffix_min_.assign((n_ + 1) * n_, kNoFinal);
  for (std::size_t t = n_; t-- > 0;) {
    for (std::size_t f = 0; f < n_; ++f) {
      wrap_suffix_min_[t * n_ + f] = std::min(
          wrap_suffix_min_[(t + 1) * n_ + f], wrap_direct_[t * n_ + f]);
    }
  }
  wrap_zero_horizon_.assign(n_, 0);
  for (std::size_t f = 0; f < n_; ++f) {
    for (std::size_t j = n_; j-- > 0;) {
      if (wrap_direct_[j * n_ + f] == 0) {
        wrap_zero_horizon_[f] = j + 1;
        break;
      }
    }
  }
}

int SuffixBounds::cheapest_incoming_suffix(std::size_t from) const {
  check_arg(from <= n_, "SuffixBounds: suffix start out of range");
  if (!dense_) return 0;
  return suffix_incoming_[from];
}

int SuffixBounds::wrap_floor(std::size_t first, std::size_t last,
                             std::size_t from) const {
  check_arg(first < n_ && last < n_ && from <= n_,
            "SuffixBounds: access index out of range");
  if (!dense_) return 0;
  return std::min(wrap_direct_[last * n_ + first],
                  wrap_suffix_min_[from * n_ + first]);
}

int SuffixBounds::wrap_direct(std::size_t last, std::size_t first) const {
  check_arg(first < n_ && last < n_,
            "SuffixBounds: access index out of range");
  if (!dense_) return 0;
  return wrap_direct_[last * n_ + first];
}

std::size_t SuffixBounds::wrap_zero_horizon(std::size_t first) const {
  check_arg(first < n_, "SuffixBounds: access index out of range");
  if (!dense_) return std::numeric_limits<std::size_t>::max();
  return wrap_zero_horizon_[first];
}

int SuffixBounds::root_lower_bound(std::size_t registers) const {
  if (!dense_) return 0;
  // Each of the at-most-`registers` fresh openings saves at most one
  // access its cheapest incoming transition (costs are 0/1).
  const int open_savings =
      static_cast<int>(std::min<std::size_t>(registers, n_));
  return std::max(0, suffix_incoming_[0] - open_savings);
}

}  // namespace dspaddr::core
