// Edge-forcing analysis (paper section 3.1): "Based on these bounds,
// one can quickly decide whether or not a certain graph edge must be
// included in the path cover."
//
// Under the acyclic model the minimum path cover corresponds to a
// maximum bipartite matching; an intra edge e is *mandatory* iff every
// maximum matching uses it, which holds exactly when the maximum
// matching of G - e is smaller than that of G. Dually, an edge is
// *useless* iff no maximum matching uses it (forcing it shrinks the
// matching). These classifications diagnose how constrained an instance
// is — instances with many mandatory edges are nearly trivially covered;
// instances with none give the branch-and-bound its hardest time
// (bench_path_cover reports the statistics).
#pragma once

#include <cstddef>
#include <vector>

#include "core/access_graph.hpp"

namespace dspaddr::core {

/// Classification of one intra-iteration zero-cost edge.
enum class EdgeRole {
  /// Used by every maximum matching (hence by every minimum acyclic
  /// cover).
  kMandatory,
  /// Used by some but not all maximum matchings.
  kOptional,
  /// Used by no maximum matching.
  kUseless,
};

const char* to_string(EdgeRole role);

struct ClassifiedEdge {
  std::size_t from = 0;
  std::size_t to = 0;
  EdgeRole role = EdgeRole::kOptional;
};

/// Classifies every intra edge of the graph (acyclic-model reasoning;
/// O(E) matching recomputations — fine for the instance sizes phase 1
/// handles exactly).
std::vector<ClassifiedEdge> classify_edges(const AccessGraph& graph);

/// Count of mandatory edges (convenience for benches).
std::size_t mandatory_edge_count(const AccessGraph& graph);

}  // namespace dspaddr::core
