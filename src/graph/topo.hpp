// Topological ordering and acyclicity check for Digraph.
#pragma once

#include <optional>
#include <vector>

#include "graph/digraph.hpp"

namespace dspaddr::graph {

/// Kahn's algorithm: a topological order of `g`, or nullopt when `g`
/// contains a cycle.
std::optional<std::vector<NodeId>> topological_order(const Digraph& g);

/// True when `g` has no directed cycle.
bool is_acyclic(const Digraph& g);

}  // namespace dspaddr::graph
