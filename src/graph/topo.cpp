#include "graph/topo.hpp"

#include <queue>

namespace dspaddr::graph {

std::optional<std::vector<NodeId>> topological_order(const Digraph& g) {
  const std::size_t n = g.node_count();
  std::vector<std::size_t> remaining_preds(n);
  std::queue<NodeId> ready;
  for (NodeId v = 0; v < n; ++v) {
    remaining_preds[v] = g.in_degree(v);
    if (remaining_preds[v] == 0) ready.push(v);
  }

  std::vector<NodeId> order;
  order.reserve(n);
  while (!ready.empty()) {
    const NodeId v = ready.front();
    ready.pop();
    order.push_back(v);
    for (NodeId succ : g.successors(v)) {
      if (--remaining_preds[succ] == 0) ready.push(succ);
    }
  }
  if (order.size() != n) return std::nullopt;
  return order;
}

bool is_acyclic(const Digraph& g) {
  return topological_order(g).has_value();
}

}  // namespace dspaddr::graph
