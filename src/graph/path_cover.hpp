// Minimum node-disjoint path cover of a DAG via bipartite matching.
//
// Fulkerson's reduction: split every node v into v_out (left) and v_in
// (right); each DAG edge (u, v) becomes a bipartite edge (u_out, v_in).
// A maximum matching of size m yields a minimum path cover with
// N - m paths, and the matched pairs are exactly the consecutive node
// pairs of those paths. This is the exact minimum for the acyclic cost
// model and the lower bound used by phase 1 of the allocator for the
// cyclic model.
#pragma once

#include <vector>

#include "graph/digraph.hpp"

namespace dspaddr::graph {

/// A node-disjoint path cover: every node of the graph appears in
/// exactly one path, and every consecutive pair inside a path is an
/// edge of the graph.
struct PathCover {
  std::vector<std::vector<NodeId>> paths;

  std::size_t path_count() const { return paths.size(); }
};

/// Exact minimum path cover of a DAG. Requires `g` acyclic (throws
/// InvalidArgument otherwise).
PathCover minimum_path_cover_dag(const Digraph& g);

/// Validates `cover` against `g`: every node in exactly one path and
/// all consecutive pairs are edges. Throws InvariantViolation on
/// failure (used in tests and as a post-condition in the allocator).
void validate_path_cover(const Digraph& g, const PathCover& cover);

}  // namespace dspaddr::graph
