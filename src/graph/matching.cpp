#include "graph/matching.hpp"

#include <limits>
#include <queue>

#include "support/check.hpp"

namespace dspaddr::graph {

namespace {

constexpr std::uint32_t kNil = MatchingResult::kUnmatched;
constexpr std::uint32_t kInf = std::numeric_limits<std::uint32_t>::max();

struct HopcroftKarp {
  std::size_t left_count;
  std::vector<std::vector<std::uint32_t>> adjacency;
  std::vector<std::uint32_t> match_left;
  std::vector<std::uint32_t> match_right;
  std::vector<std::uint32_t> level;

  bool bfs() {
    std::queue<std::uint32_t> frontier;
    for (std::uint32_t u = 0; u < left_count; ++u) {
      if (match_left[u] == kNil) {
        level[u] = 0;
        frontier.push(u);
      } else {
        level[u] = kInf;
      }
    }
    bool found_augmenting = false;
    while (!frontier.empty()) {
      const std::uint32_t u = frontier.front();
      frontier.pop();
      for (std::uint32_t v : adjacency[u]) {
        const std::uint32_t w = match_right[v];
        if (w == kNil) {
          found_augmenting = true;
        } else if (level[w] == kInf) {
          level[w] = level[u] + 1;
          frontier.push(w);
        }
      }
    }
    return found_augmenting;
  }

  bool dfs(std::uint32_t u) {
    for (std::uint32_t v : adjacency[u]) {
      const std::uint32_t w = match_right[v];
      if (w == kNil || (level[w] == level[u] + 1 && dfs(w))) {
        match_left[u] = v;
        match_right[v] = u;
        return true;
      }
    }
    level[u] = kInf;
    return false;
  }
};

}  // namespace

MatchingResult hopcroft_karp(
    std::size_t left_count, std::size_t right_count,
    const std::vector<std::pair<std::uint32_t, std::uint32_t>>& edges) {
  HopcroftKarp state;
  state.left_count = left_count;
  state.adjacency.resize(left_count);
  state.match_left.assign(left_count, kNil);
  state.match_right.assign(right_count, kNil);
  state.level.assign(left_count, kInf);
  for (const auto& [u, v] : edges) {
    check_arg(u < left_count && v < right_count,
              "hopcroft_karp: edge endpoint out of range");
    state.adjacency[u].push_back(v);
  }

  MatchingResult result;
  while (state.bfs()) {
    for (std::uint32_t u = 0; u < left_count; ++u) {
      if (state.match_left[u] == kNil && state.dfs(u)) {
        ++result.size;
      }
    }
  }
  result.match_left = std::move(state.match_left);
  result.match_right = std::move(state.match_right);
  return result;
}

}  // namespace dspaddr::graph
