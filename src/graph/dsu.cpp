#include "graph/dsu.hpp"

#include <numeric>

#include "support/check.hpp"

namespace dspaddr::graph {

Dsu::Dsu(std::size_t element_count)
    : parent_(element_count), size_(element_count, 1),
      set_count_(element_count) {
  std::iota(parent_.begin(), parent_.end(), std::size_t{0});
}

std::size_t Dsu::find(std::size_t element) {
  check_arg(element < parent_.size(), "Dsu: element out of range");
  std::size_t root = element;
  while (parent_[root] != root) {
    root = parent_[root];
  }
  while (parent_[element] != root) {
    const std::size_t next = parent_[element];
    parent_[element] = root;
    element = next;
  }
  return root;
}

bool Dsu::unite(std::size_t a, std::size_t b) {
  std::size_t ra = find(a);
  std::size_t rb = find(b);
  if (ra == rb) return false;
  if (size_[ra] < size_[rb]) std::swap(ra, rb);
  parent_[rb] = ra;
  size_[ra] += size_[rb];
  --set_count_;
  return true;
}

bool Dsu::same(std::size_t a, std::size_t b) {
  return find(a) == find(b);
}

std::size_t Dsu::size_of(std::size_t element) {
  return size_[find(element)];
}

}  // namespace dspaddr::graph
