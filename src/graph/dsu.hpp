// Disjoint-set union (union-find) with path compression and union by
// size. Used by the SOA path-construction heuristic to detect cycles.
#pragma once

#include <cstddef>
#include <vector>

namespace dspaddr::graph {

class Dsu {
public:
  explicit Dsu(std::size_t element_count);

  std::size_t find(std::size_t element);

  /// Merges the sets of a and b; returns false if already joined.
  bool unite(std::size_t a, std::size_t b);

  bool same(std::size_t a, std::size_t b);

  std::size_t set_count() const { return set_count_; }
  std::size_t size_of(std::size_t element);

private:
  std::vector<std::size_t> parent_;
  std::vector<std::size_t> size_;
  std::size_t set_count_;
};

}  // namespace dspaddr::graph
