#include "graph/digraph.hpp"

#include <algorithm>

namespace dspaddr::graph {

Digraph::Digraph(std::size_t node_count)
    : succ_(node_count), pred_(node_count) {}

void Digraph::add_edge(NodeId from, NodeId to) {
  check_node(from);
  check_node(to);
  if (has_edge(from, to)) return;
  succ_[from].push_back(to);
  pred_[to].push_back(from);
  ++edge_count_;
}

bool Digraph::has_edge(NodeId from, NodeId to) const {
  check_node(from);
  check_node(to);
  const auto& out = succ_[from];
  return std::find(out.begin(), out.end(), to) != out.end();
}

const std::vector<NodeId>& Digraph::successors(NodeId node) const {
  check_node(node);
  return succ_[node];
}

const std::vector<NodeId>& Digraph::predecessors(NodeId node) const {
  check_node(node);
  return pred_[node];
}

std::size_t Digraph::out_degree(NodeId node) const {
  return successors(node).size();
}

std::size_t Digraph::in_degree(NodeId node) const {
  return predecessors(node).size();
}

std::vector<std::pair<NodeId, NodeId>> Digraph::edges() const {
  std::vector<std::pair<NodeId, NodeId>> all;
  all.reserve(edge_count_);
  for (NodeId from = 0; from < succ_.size(); ++from) {
    for (NodeId to : succ_[from]) {
      all.emplace_back(from, to);
    }
  }
  return all;
}

void Digraph::check_node(NodeId node) const {
  check_arg(node < succ_.size(), "Digraph: node id out of range");
}

}  // namespace dspaddr::graph
