// A small adjacency-list directed graph.
//
// Nodes are dense indices [0, node_count). This is the shared substrate
// for the zero-cost access graph (core), matching-based path-cover bounds
// (graph), and the SOA access graph (soa).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "support/check.hpp"

namespace dspaddr::graph {

using NodeId = std::uint32_t;

/// Directed graph over dense node ids with O(1) amortized edge insertion
/// and an O(1) edge-existence query backed by a sorted post-pass or a
/// linear scan (the graphs here are small and sparse).
class Digraph {
public:
  Digraph() = default;
  explicit Digraph(std::size_t node_count);

  std::size_t node_count() const { return succ_.size(); }
  std::size_t edge_count() const { return edge_count_; }

  /// Adds the edge (from, to). Parallel edges are ignored.
  void add_edge(NodeId from, NodeId to);

  bool has_edge(NodeId from, NodeId to) const;

  const std::vector<NodeId>& successors(NodeId node) const;
  const std::vector<NodeId>& predecessors(NodeId node) const;

  std::size_t out_degree(NodeId node) const;
  std::size_t in_degree(NodeId node) const;

  /// All edges in insertion order as (from, to) pairs.
  std::vector<std::pair<NodeId, NodeId>> edges() const;

private:
  void check_node(NodeId node) const;

  std::vector<std::vector<NodeId>> succ_;
  std::vector<std::vector<NodeId>> pred_;
  std::size_t edge_count_ = 0;
};

}  // namespace dspaddr::graph
