// Hopcroft-Karp maximum bipartite matching.
//
// The minimum path cover of the intra-iteration zero-cost DAG equals
// N minus the size of a maximum matching in the split bipartite graph
// (Fulkerson); this is the poly-time lower bound on the number of
// virtual address registers K~ in the style of Araujo et al. [2].
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace dspaddr::graph {

/// Result of a maximum bipartite matching computation.
struct MatchingResult {
  /// match_left[u] is the right vertex matched to left vertex u, or
  /// kUnmatched.
  std::vector<std::uint32_t> match_left;
  /// match_right[v] is the left vertex matched to right vertex v, or
  /// kUnmatched.
  std::vector<std::uint32_t> match_right;
  std::size_t size = 0;

  static constexpr std::uint32_t kUnmatched = 0xffffffffu;
};

/// Maximum matching in the bipartite graph with `left_count` left
/// vertices, `right_count` right vertices and the given (left, right)
/// edges. O(E * sqrt(V)).
MatchingResult hopcroft_karp(
    std::size_t left_count, std::size_t right_count,
    const std::vector<std::pair<std::uint32_t, std::uint32_t>>& edges);

}  // namespace dspaddr::graph
