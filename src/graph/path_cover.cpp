#include "graph/path_cover.hpp"

#include <algorithm>

#include "graph/matching.hpp"
#include "graph/topo.hpp"
#include "support/check.hpp"

namespace dspaddr::graph {

PathCover minimum_path_cover_dag(const Digraph& g) {
  check_arg(is_acyclic(g), "minimum_path_cover_dag: graph has a cycle");
  const std::size_t n = g.node_count();

  std::vector<std::pair<std::uint32_t, std::uint32_t>> bipartite_edges;
  bipartite_edges.reserve(g.edge_count());
  for (const auto& [from, to] : g.edges()) {
    bipartite_edges.emplace_back(from, to);
  }
  const MatchingResult matching = hopcroft_karp(n, n, bipartite_edges);

  // match_left[u] == v means u is directly followed by v in its path.
  std::vector<bool> has_predecessor(n, false);
  for (NodeId v = 0; v < n; ++v) {
    if (matching.match_right[v] != MatchingResult::kUnmatched) {
      has_predecessor[v] = true;
    }
  }

  PathCover cover;
  for (NodeId start = 0; start < n; ++start) {
    if (has_predecessor[start]) continue;
    std::vector<NodeId> path;
    NodeId node = start;
    while (true) {
      path.push_back(node);
      const std::uint32_t next = matching.match_left[node];
      if (next == MatchingResult::kUnmatched) break;
      node = next;
    }
    cover.paths.push_back(std::move(path));
  }

  check_invariant(cover.path_count() == n - matching.size,
                  "minimum_path_cover_dag: path count mismatch");
  validate_path_cover(g, cover);
  return cover;
}

void validate_path_cover(const Digraph& g, const PathCover& cover) {
  const std::size_t n = g.node_count();
  std::vector<std::size_t> appearances(n, 0);
  for (const auto& path : cover.paths) {
    check_invariant(!path.empty(), "path cover: empty path");
    for (std::size_t i = 0; i < path.size(); ++i) {
      check_invariant(path[i] < n, "path cover: node out of range");
      ++appearances[path[i]];
      if (i + 1 < path.size()) {
        check_invariant(g.has_edge(path[i], path[i + 1]),
                        "path cover: consecutive pair is not an edge");
      }
    }
  }
  check_invariant(
      std::all_of(appearances.begin(), appearances.end(),
                  [](std::size_t c) { return c == 1; }),
      "path cover: every node must appear exactly once");
}

}  // namespace dspaddr::graph
