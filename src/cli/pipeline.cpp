#include "cli/pipeline.hpp"

#include <sstream>

#include "agu/codegen.hpp"
#include "agu/metrics.hpp"
#include "eval/batch.hpp"
#include "ir/layout.hpp"
#include "support/strings.hpp"

namespace dspaddr::cli {

agu::AguSpec resolve_machine(const RunOptions& options) {
  agu::AguSpec machine;
  if (options.machine.has_value()) {
    machine = agu::builtin_machine(*options.machine);
  } else {
    machine.name = "custom";
    machine.description = "flag-defined AGU";
    machine.address_registers = 1;
    machine.modify_registers = 0;
    machine.modify_range = 1;
  }
  if (options.registers.has_value()) {
    machine.address_registers = *options.registers;
  }
  if (options.modify_range.has_value()) {
    machine.modify_range = *options.modify_range;
  }
  if (options.modify_registers.has_value()) {
    machine.modify_registers = *options.modify_registers;
  }
  return machine;
}

PipelineReport run_pipeline(const ir::Kernel& kernel,
                            const agu::AguSpec& machine,
                            std::optional<std::uint64_t> iterations,
                            const core::Phase2Options& phase2) {
  PipelineReport report;
  report.kernel = kernel;
  report.machine = machine;

  const ir::AccessSequence seq = ir::lower(kernel);
  report.accesses = seq.size();

  core::ProblemConfig config;
  config.modify_range = machine.modify_range;
  config.registers = machine.address_registers;
  config.phase2 = phase2;
  const core::Allocation allocation =
      core::RegisterAllocator(config).run(seq);
  report.stats = allocation.stats();
  report.k_tilde = allocation.stats().k_tilde;
  report.allocation_cost = allocation.cost();
  report.intra_cost = allocation.intra_cost();
  report.wrap_cost = allocation.wrap_cost();
  report.allocation_text = allocation.to_string(seq);

  report.plan = core::plan_modify_registers(seq, allocation,
                                            machine.modify_registers);
  report.program = agu::generate_code(seq, allocation, report.plan);

  report.iterations =
      iterations.value_or(static_cast<std::uint64_t>(kernel.iterations()));
  report.sim = agu::Simulator{}.run(report.program, seq, report.iterations);
  report.verified = agu::verified_against_cost(report.sim, report.iterations,
                                               report.plan.residual_cost);

  const agu::AddressingComparison comparison =
      agu::compare_addressing(kernel, allocation);
  report.baseline_size_words = comparison.baseline.size_words;
  report.baseline_cycles = comparison.baseline.cycles;
  report.optimized_size_words = comparison.optimized.size_words;
  report.optimized_cycles = comparison.optimized.cycles;
  report.size_reduction_percent = comparison.size_reduction_percent;
  report.speed_reduction_percent = comparison.speed_reduction_percent;
  return report;
}

std::string report_to_text(const PipelineReport& report, bool show_program) {
  std::ostringstream out;
  const ir::Kernel& kernel = report.kernel;
  const agu::AguSpec& machine = report.machine;

  out << "kernel:  " << kernel.name();
  if (!kernel.description().empty()) {
    out << " — " << kernel.description();
  }
  out << "\n";
  out << "machine: " << machine.name << " (K=" << machine.address_registers
      << ", L=" << machine.modify_registers << ", M=" << machine.modify_range
      << ")\n";
  out << "layout:  " << kernel.arrays().size() << " array(s), "
      << report.accesses << " accesses/iteration, " << report.iterations
      << " iterations\n\n";

  out << "allocation (phase 1 " << (report.stats.phase1_exact ? "exact" : "heuristic");
  if (report.k_tilde.has_value()) {
    out << ", K~=" << *report.k_tilde;
  }
  out << ", " << report.stats.merges << " merge(s); phase 2 "
      << (report.stats.phase2_exact ? "exact" : "heuristic");
  if (report.stats.phase2_exact) {
    if (report.stats.phase2_proven) {
      out << ", proven optimal";
    } else {
      out << ", gap " << report.stats.phase2_gap << " (cost >= "
          << report.stats.phase2_lower_bound << ")";
    }
    if (report.stats.phase2_nodes > 0) {
      out << ", " << report.stats.phase2_nodes << " node(s)";
    }
  }
  out << "):\n";
  out << report.allocation_text << "\n";
  out << "cost: " << report.allocation_cost << "/iteration (intra "
      << report.intra_cost << " + wrap " << report.wrap_cost << ")\n\n";

  out << "modify registers: " << report.plan.values.size() << " planned";
  if (!report.plan.values.empty()) {
    std::vector<std::string> parts;
    for (const core::ModifyRegister& mr : report.plan.values) {
      parts.push_back("MR=" + std::to_string(mr.value) + " covers " +
                      std::to_string(mr.covered));
    }
    out << " (" << support::join(parts, ", ") << ")";
  }
  out << "; residual cost " << report.plan.residual_cost << "/iteration\n\n";

  if (show_program) {
    out << "address program:\n" << report.program.to_string() << "\n";
  }
  out << "program: " << report.program.setup.size() << " setup + "
      << report.program.body.size() << " body instruction(s), "
      << report.program.setup_address_words() << "+"
      << report.program.body_address_words() << " address words\n";
  out << "simulation: " << (report.verified ? "VERIFIED" : "FAILED");
  if (!report.verified && !report.sim.failure.empty()) {
    out << " (" << report.sim.failure << ")";
  }
  out << " — " << report.sim.accesses_executed << " accesses, "
      << report.sim.extra_instructions << " extra address instruction(s), "
      << report.sim.address_cycles << " address cycle(s)\n\n";

  out << "code metrics (vs naive addressing):\n";
  out << "  size:  " << report.optimized_size_words << " vs "
      << report.baseline_size_words << " words  ("
      << support::format_percent(report.size_reduction_percent)
      << " smaller)\n";
  out << "  speed: " << report.optimized_cycles << " vs "
      << report.baseline_cycles << " cycles ("
      << support::format_percent(report.speed_reduction_percent)
      << " faster)\n";
  return out.str();
}

std::string report_to_csv(const PipelineReport& report) {
  eval::BatchRow row;
  row.kernel = report.kernel.name();
  row.machine = report.machine.name;
  row.registers = report.machine.address_registers;
  row.modify_range = report.machine.modify_range;
  row.modify_registers = report.machine.modify_registers;
  row.accesses = report.accesses;
  row.k_tilde = report.k_tilde;
  row.allocation_cost = report.allocation_cost;
  row.residual_cost = report.plan.residual_cost;
  row.phase2_exact = report.stats.phase2_exact;
  row.phase2_proven = report.stats.phase2_proven;
  row.phase2_gap = report.stats.phase2_gap;
  row.phase2_nodes = report.stats.phase2_nodes;
  row.size_reduction_percent = report.size_reduction_percent;
  row.speed_reduction_percent = report.speed_reduction_percent;
  row.verified = report.verified;

  eval::BatchResult result;
  result.rows.push_back(row);
  return eval::batch_to_csv(result).to_string();
}

}  // namespace dspaddr::cli
