#include "cli/pipeline.hpp"

#include <sstream>

#include "eval/batch.hpp"
#include "support/csv.hpp"
#include "support/strings.hpp"

namespace dspaddr::cli {

agu::AguSpec resolve_machine(const RunOptions& options) {
  MachineSelector selector;
  selector.name = options.machine;
  selector.file = options.machine_file;
  selector.registers = options.registers;
  selector.modify_range = options.modify_range;
  selector.modify_registers = options.modify_registers;
  return resolve_machine(selector);
}

agu::AguSpec resolve_machine(const CompareOptions& options) {
  MachineSelector selector;
  selector.name = options.machine;
  selector.file = options.machine_file;
  selector.registers = options.registers;
  selector.modify_range = options.modify_range;
  selector.modify_registers = options.modify_registers;
  return resolve_machine(selector);
}

engine::Result run_pipeline(const ir::Kernel& kernel,
                            const agu::AguSpec& machine,
                            std::optional<std::uint64_t> iterations,
                            const core::Phase2Options& phase2,
                            const std::string& layout,
                            const std::string& strategy) {
  // One-shot run: no traffic to memoize across.
  engine::Engine::Options options;
  options.cache_capacity = 0;
  engine::Engine engine(std::move(options));
  return run_pipeline(kernel, machine, iterations, phase2, layout, strategy,
                      engine);
}

engine::Result run_pipeline(const ir::Kernel& kernel,
                            const agu::AguSpec& machine,
                            std::optional<std::uint64_t> iterations,
                            const core::Phase2Options& phase2,
                            const std::string& layout,
                            const std::string& strategy,
                            engine::Engine& engine) {
  engine::Request request;
  request.kernel = kernel;
  request.machine = machine;
  request.layout = layout;
  request.strategy = strategy;
  request.phase2 = phase2;
  request.iterations = iterations;
  return engine.run(request);
}

std::string report_to_text(const engine::Result& report, bool show_program) {
  std::ostringstream out;
  const ir::Kernel& kernel = report.kernel;
  const agu::AguSpec& machine = report.machine;

  out << "kernel:  " << kernel.name();
  if (!kernel.description().empty()) {
    out << " — " << kernel.description();
  }
  out << "\n";
  out << "machine: " << machine.name << " (K=" << machine.address_registers()
      << ", L=" << machine.modify_registers();
  // Symmetric windows render as the paper's M; richer machines show
  // the full window, their free widths and a pre-modify marker.
  if (machine.modify_lo == -machine.modify_hi) {
    out << ", M=" << machine.modify_range();
  } else {
    out << ", M=[" << machine.modify_lo << ", " << machine.modify_hi << "]";
  }
  if (!machine.free_widths.empty()) {
    std::vector<std::string> widths;
    for (const std::int64_t width : machine.free_widths) {
      widths.push_back((width > 0 ? "+" : "") + std::to_string(width));
    }
    out << ", free " << support::join(widths, "/");
  }
  if (machine.addressing == agu::Addressing::kPreModify) {
    out << ", pre-modify";
  }
  out << ")\n";
  out << "layout:  " << report.layout << " — " << kernel.arrays().size()
      << " array(s) in " << report.layout_extent << " word(s), "
      << report.accesses << " accesses/iteration, " << report.iterations
      << " iterations\n\n";

  // The phase-structure detail is only printed for strategies whose
  // stats actually describe the paper's phases (the strategy says so
  // itself); placement baselines have no phases to report.
  const engine::AllocationStrategy* strategy =
      engine::StrategyRegistry::builtin().allocation(report.strategy);
  const bool phases = strategy != nullptr && strategy->reports_phases();
  out << "allocation (" << report.strategy;
  if (phases) {
    out << ": phase 1 "
        << (report.stats.phase1_exact ? "exact" : "heuristic");
    if (report.k_tilde.has_value()) {
      out << ", K~=" << *report.k_tilde;
    }
    out << ", " << report.stats.merges << " merge(s); phase 2 "
        << (report.stats.phase2_exact ? "exact" : "heuristic");
    if (report.stats.phase2_exact) {
      if (report.stats.phase2_proven) {
        out << ", proven optimal";
      } else {
        out << ", gap " << report.stats.phase2_gap << " (cost >= "
            << report.stats.phase2_lower_bound << ")";
      }
      if (report.stats.phase2_nodes > 0) {
        out << ", " << report.stats.phase2_nodes << " node(s)";
      }
    }
    if (report.stats.phase2_windows > 0) {
      out << "; tiled " << report.stats.phase2_windows_proven << "/"
          << report.stats.phase2_windows << " window(s) proven";
      if (!report.stats.phase2_window_widths.empty()) {
        out << ", widths";
        for (const std::size_t width : report.stats.phase2_window_widths) {
          out << ' ' << width;
        }
      }
    }
    if (report.stats.phase2_subtree_tasks > 0) {
      out << ", " << report.stats.phase2_subtree_tasks
          << " subtree task(s)";
    }
    if (report.stats.phase2_steals > 0) {
      out << ", " << report.stats.phase2_steals << " steal(s) over "
          << report.stats.phase2_splits << " split(s)";
    }
    if (report.stats.phase2_table_cap_hits > 0) {
      out << ", " << report.stats.phase2_table_cap_hits
          << " table-cap hit(s)";
    }
  }
  out << "):\n";
  out << report.allocation_text << "\n";
  out << "cost: " << report.allocation_cost << "/iteration (intra "
      << report.intra_cost << " + wrap " << report.wrap_cost << ")\n\n";

  out << "modify registers: " << report.plan.values.size() << " planned";
  if (!report.plan.values.empty()) {
    std::vector<std::string> parts;
    for (const core::ModifyRegister& mr : report.plan.values) {
      parts.push_back("MR=" + std::to_string(mr.value) + " covers " +
                      std::to_string(mr.covered));
    }
    out << " (" << support::join(parts, ", ") << ")";
  }
  out << "; residual cost " << report.plan.residual_cost << "/iteration\n\n";

  if (show_program) {
    out << "address program:\n" << report.program.to_string() << "\n";
  }
  out << "program: " << report.program.setup.size() << " setup + "
      << report.program.body.size() << " body instruction(s), "
      << report.program.setup_address_words() << "+"
      << report.program.body_address_words() << " address words\n";
  out << "simulation: " << (report.verified ? "VERIFIED" : "FAILED");
  if (!report.verified && !report.sim.failure.empty()) {
    out << " (" << report.sim.failure << ")";
  }
  out << " — " << report.sim.accesses_executed << " accesses, "
      << report.sim.extra_instructions << " extra address instruction(s), "
      << report.sim.address_cycles << " address cycle(s)\n\n";

  out << "code metrics (vs naive addressing):\n";
  out << "  size:  " << report.optimized_size_words << " vs "
      << report.baseline_size_words << " words  ("
      << support::format_percent(report.size_reduction_percent)
      << " smaller)\n";
  out << "  speed: " << report.optimized_cycles << " vs "
      << report.baseline_cycles << " cycles ("
      << support::format_percent(report.speed_reduction_percent)
      << " faster)\n";
  return out.str();
}

std::string report_to_csv(const engine::Result& report) {
  support::CsvWriter csv(eval::batch_csv_header());
  csv.add_row(eval::batch_row_fields(eval::row_from_result(report)));
  return csv.to_string();
}

}  // namespace dspaddr::cli
