// `dspaddr serve` — the pipelined JSON-lines optimization service.
//
// Reads one JSON request object per input line, answers with one JSON
// response object per output line (flushed per line), and keeps a
// single engine::Engine alive for the whole session so repeated
// requests hit the fingerprint cache. Requests are computed
// concurrently on `--jobs` runtime::TaskPool workers behind a reader
// thread, and a runtime::OrderedCollector re-sequences the responses,
// so output order — and, thanks to the cache's single-flight misses,
// every byte including `stats` counters — is identical whatever the
// jobs level. A bounded in-flight window backpressures the reader so
// one slow request cannot buffer unbounded work. This turns the
// binary into a long-lived service a frontend can keep a pipe to:
//
//   $ printf '%s\n' '{"builtin":"fir","machine":"wide4"}' | dspaddr serve
//
// Request object (one per line):
//   exactly one kernel source:
//     "builtin": "<name>"          builtin kernel (see `dspaddr kernels`)
//     "kernel_file": "<path>"      workload file (.c or .kern)
//     "kernel": {...}              inline kernel (engine/serialize.hpp)
//   optional:
//     "id": <any>                  echoed back verbatim in the response
//     "machine": "<name>"          builtin AGU supplying K/L/M defaults
//     "registers" / "modify_range" / "modify_registers": overrides
//     "iterations": <n>            simulated iterations
//     "phase2": "auto"|"exact"|"heuristic"|"tiled",
//     "phase2_jobs": <n>, "time_budget_ms": <ms>
//     "stop_after": "<stage>"      run a pipeline prefix
//   special (drains the pipeline first, so counters are settled):
//     {"stats": true}              answers {"stats": {hits, misses,
//                                  evictions, entries, capacity,
//                                  shards: [...], phase2: {...},
//                                  store: {...} (with --store)}}
//     {"clear_cache": true}        drops the RAM result cache; answers
//                                  {"cleared": true, "dropped": <n>}
//                                  (the --store log is untouched)
//     {"metrics": true}            answers {"metrics": {counters,
//                                  gauges, histograms, cache, store}}
//                                  — engine/serialize.hpp
//                                  metrics_report_json; schema
//                                  deterministic, values wall-clock
//
// With --store=PATH the engine runs two-tier: RAM LRU over the
// persistent result log (store/result_store.hpp), so a restarted serve
// session answers previously-seen requests from disk, byte-identically
// and with zero phase-2 work. --metrics-csv=PATH dumps the metrics
// registry as CSV when the session ends.
//
// Responses carry the engine::Result schema of engine/serialize.hpp
// (plus the "id" echo). A malformed request produces
// {"error": {"stage": "request", "message": ...}} and the loop
// continues — one bad line never takes the service down.
#pragma once

#include <istream>
#include <ostream>

#include "cli/options.hpp"

namespace dspaddr::cli {

/// Runs the serve loop until EOF on `in`; returns the process exit
/// code (0 — per-request failures are reported in-band).
int run_serve(std::istream& in, std::ostream& out,
              const ServeOptions& options);

}  // namespace dspaddr::cli
