#include "cli/serve.hpp"

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>

#include "cli/kernel_io.hpp"
#include "cli/machine_resolve.hpp"
#include "engine/engine.hpp"
#include "engine/portfolio.hpp"
#include "engine/serialize.hpp"
#include "engine/strategy.hpp"
#include "ir/kernels.hpp"
#include "obs/metrics.hpp"
#include "runtime/ordered_collector.hpp"
#include "runtime/task_pool.hpp"
#include "store/result_store.hpp"
#include "support/check.hpp"
#include "support/json.hpp"
#include "support/strings.hpp"

namespace dspaddr::cli {
namespace {

using support::JsonValue;

/// Keys a request object may carry; anything else is a hard error so
/// that a typo ("machne") fails loudly instead of being ignored.
constexpr const char* kKnownKeys[] = {
    "id",          "stats",      "clear_cache",
    "metrics",     "builtin",    "kernel_file",
    "kernel",      "machine",    "machine_file",
    "machine_spec", "registers", "modify_range",
    "modify_registers", "iterations", "phase2",
    "phase2_jobs", "phase2_steal_grain", "phase2_window",
    "time_budget_ms", "stop_after",
    "layout",      "strategy",   "race_budget_ms",
};

void check_known_keys(const JsonValue& json) {
  for (const JsonValue::Member& member : json.members()) {
    bool known = false;
    for (const char* key : kKnownKeys) {
      if (member.first == key) {
        known = true;
        break;
      }
    }
    check_arg(known, "unknown request field '" + member.first + "'");
  }
}

std::int64_t int_field(const JsonValue& json, const char* key,
                       std::int64_t min_value, std::int64_t fallback) {
  const JsonValue* value = json.find(key);
  if (value == nullptr) {
    return fallback;
  }
  const std::int64_t parsed = value->as_int();
  check_arg(parsed >= min_value,
            std::string(key) + ": value must be >= " +
                std::to_string(min_value));
  return parsed;
}

ir::Kernel kernel_from_request(const JsonValue& json) {
  const JsonValue* builtin = json.find("builtin");
  const JsonValue* file = json.find("kernel_file");
  const JsonValue* inline_kernel = json.find("kernel");
  const int sources = (builtin != nullptr) + (file != nullptr) +
                      (inline_kernel != nullptr);
  check_arg(sources == 1,
            "request needs exactly one of 'builtin', 'kernel_file' or "
            "'kernel'");
  if (builtin != nullptr) {
    return ir::builtin_kernel(builtin->as_string());
  }
  if (file != nullptr) {
    return load_kernel_file(file->as_string());
  }
  return engine::kernel_from_json(*inline_kernel);
}

agu::AguSpec machine_from_request(const JsonValue& json) {
  // The serve surface resolves machines exactly like run/batch: name
  // layered over files, inline specs exclusive with both, numeric
  // overrides last.
  MachineSelector selector;
  selector.default_description = "request-defined AGU";
  if (const JsonValue* name = json.find("machine")) {
    selector.name = name->as_string();
  }
  if (const JsonValue* file = json.find("machine_file")) {
    selector.file = file->as_string();
  }
  selector.inline_spec = json.find("machine_spec");
  if (json.find("registers") != nullptr) {
    selector.registers =
        static_cast<std::size_t>(int_field(json, "registers", 1, 1));
  }
  if (json.find("modify_range") != nullptr) {
    selector.modify_range = int_field(json, "modify_range", 0, 0);
  }
  if (json.find("modify_registers") != nullptr) {
    selector.modify_registers =
        static_cast<std::size_t>(int_field(json, "modify_registers", 0, 0));
  }
  return resolve_machine(selector);
}

engine::Request request_from_json(const JsonValue& json,
                                  std::int64_t max_iterations) {
  engine::Request request;
  request.kernel = kernel_from_request(json);
  request.machine = machine_from_request(json);
  if (const JsonValue* iterations = json.find("iterations")) {
    const std::int64_t value = iterations->as_int();
    check_arg(value >= 1, "iterations: value must be >= 1");
    request.iterations = static_cast<std::uint64_t>(value);
  }
  if (const JsonValue* layout = json.find("layout")) {
    request.layout = layout->as_string();
    check_arg(request.layout == engine::kAutoStrategy ||
                  engine::StrategyRegistry::builtin().layout(
                      request.layout) != nullptr,
              "layout: unknown strategy '" + request.layout + "' (auto, " +
                  engine::known_layout_names() + ")");
  }
  if (const JsonValue* strategy = json.find("strategy")) {
    request.strategy = strategy->as_string();
    check_arg(request.strategy == engine::kAutoStrategy ||
                  engine::StrategyRegistry::builtin().allocation(
                      request.strategy) != nullptr,
              "strategy: unknown strategy '" + request.strategy +
                  "' (auto, " + engine::known_strategy_names() + ")");
  }
  check_arg(json.find("race_budget_ms") == nullptr ||
                engine::Portfolio::is_auto(request),
            "race_budget_ms: only meaningful when layout or strategy is "
            "'auto'");
  if (const JsonValue* phase2 = json.find("phase2")) {
    request.phase2.mode = parse_phase2_mode(phase2->as_string());
  }
  // Defaults to 1 (sequential): a jobs level changes only diagnostics,
  // never costs, but cached/batched responses must stay reproducible
  // unless a request opts in.
  request.phase2.jobs =
      static_cast<std::size_t>(int_field(json, "phase2_jobs", 1, 1));
  request.phase2.steal_grain =
      static_cast<std::size_t>(int_field(json, "phase2_steal_grain", 0, 0));
  // "phase2_window": a width (>= 8) or the string "auto" — the same
  // surface as the CLI's --phase2-window.
  if (const JsonValue* window = json.find("phase2_window")) {
    if (window->is_string()) {
      check_arg(window->as_string() == "auto",
                "phase2_window: expected a width >= 8 or \"auto\"");
      request.phase2.tile_width_auto = true;
    } else {
      const std::int64_t width = window->as_int();
      check_arg(width >= 8, "phase2_window: expected a width >= 8");
      request.phase2.tile_width = static_cast<std::size_t>(width);
    }
  }
  request.phase2.time_budget_ms = int_field(json, "time_budget_ms", 0, 0);
  if (const JsonValue* stop_after = json.find("stop_after")) {
    const std::optional<engine::Stage> stage =
        engine::stage_from_name(stop_after->as_string());
    check_arg(stage.has_value(),
              "stop_after: unknown stage '" + stop_after->as_string() +
                  "' (lower, allocate, plan, codegen, simulate, metrics)");
    request.stop_after = *stage;
  }
  // The simulator is O(iterations); a long-lived service must bound
  // the work one request can demand (--max-iterations), or a single
  // huge request stalls everything queued behind it. Cap the
  // *effective* simulated count when the simulate stage will run:
  // without an override the simulator uses the kernel's own
  // iterations, which an inline kernel or a workload file controls
  // just as freely as the "iterations" field.
  if (request.stop_after >= engine::Stage::kSimulate) {
    const std::uint64_t effective_iterations = request.iterations.value_or(
        static_cast<std::uint64_t>(request.kernel.iterations()));
    check_arg(effective_iterations <=
                  static_cast<std::uint64_t>(max_iterations),
              "iterations: effective count " +
                  std::to_string(effective_iterations) + " exceeds the " +
                  std::to_string(max_iterations) +
                  " per-request serve limit (--max-iterations)");
  }
  return request;
}

/// What one input line asks for. Control lines (stats, clear_cache,
/// metrics) observe or mutate the whole engine, so the pipeline drains
/// before they run — that is what keeps their counters deterministic
/// whatever the --jobs level.
enum class RequestKind { kPipeline, kStats, kClearCache, kMetrics };

RequestKind classify(const JsonValue& json) {
  const JsonValue* stats = json.find("stats");
  if (stats != nullptr && stats->as_bool()) {
    return RequestKind::kStats;
  }
  const JsonValue* clear_cache = json.find("clear_cache");
  if (clear_cache != nullptr && clear_cache->as_bool()) {
    return RequestKind::kClearCache;
  }
  const JsonValue* metrics = json.find("metrics");
  if (metrics != nullptr && metrics->as_bool()) {
    return RequestKind::kMetrics;
  }
  return RequestKind::kPipeline;
}

JsonValue error_response(const JsonValue* id, const std::string& message) {
  JsonValue response = JsonValue::object();
  if (id != nullptr) {
    response.set("id", *id);
  }
  JsonValue error = JsonValue::object();
  error.set("stage", JsonValue::string("request"));
  error.set("message", JsonValue::string(message));
  response.set("error", std::move(error));
  return response;
}

/// Runs one pipeline request end to end (worker-side). Never throws:
/// every failure is folded into the in-band error member.
std::string pipeline_response(const JsonValue& request_json,
                              engine::Engine& engine,
                              engine::Portfolio& portfolio,
                              std::int64_t max_iterations) {
  JsonValue response = JsonValue::object();
  try {
    // Echo the id before any validation so clients can correlate even
    // a rejected request with its response.
    if (const JsonValue* id = request_json.find("id")) {
      response.set("id", *id);
    }
    check_known_keys(request_json);
    const engine::Request request =
        request_from_json(request_json, max_iterations);
    engine::Result result;
    if (engine::Portfolio::is_auto(request)) {
      // An auto request races through the shared portfolio (which
      // learns across the session's traffic); the response carries the
      // winner's result, with the resolved layout/strategy members
      // showing what "auto" picked.
      std::optional<std::int64_t> budget;
      if (request_json.find("race_budget_ms") != nullptr) {
        budget = int_field(request_json, "race_budget_ms", 0, 0);
      }
      result = portfolio.run(request, nullptr, budget);
    } else {
      result = engine.run(request);
    }
    // Inline the result members so the response carries exactly the
    // --format=json schema (plus the "id" echo above).
    const JsonValue result_json = engine::result_to_json(result);
    for (const JsonValue::Member& member : result_json.members()) {
      response.set(member.first, member.second);
    }
  } catch (const std::exception& e) {
    return error_response(request_json.find("id"), e.what()).dump();
  }
  return response.dump();
}

/// Handles a stats / clear_cache control line (reader-side, after the
/// pipeline drained). Never throws.
std::string control_response(const JsonValue& request_json,
                             RequestKind kind, engine::Engine& engine,
                             engine::Portfolio& portfolio) {
  JsonValue response = JsonValue::object();
  try {
    if (const JsonValue* id = request_json.find("id")) {
      response.set("id", *id);
    }
    check_known_keys(request_json);
    if (kind == RequestKind::kStats) {
      // A stats probe carries nothing but itself (and an id).
      for (const JsonValue::Member& member : request_json.members()) {
        check_arg(member.first == "stats" || member.first == "id",
                  "stats request cannot carry field '" + member.first +
                      "'");
      }
      JsonValue stats =
          engine::cache_stats_to_json(engine.cache_stats());
      // Aggregate phase-2 work alongside the cache counters — both are
      // deterministic in the request sequence (single-flight), so the
      // whole stats line stays byte-identical across --jobs levels.
      stats.set("phase2",
                engine::phase2_totals_to_json(engine.phase2_totals()));
      if (engine.store() != nullptr) {
        stats.set("store",
                  engine::store_stats_to_json(engine.store()->stats()));
      }
      // Portfolio counters are deterministic in the request sequence
      // like the rest of the stats line (races and short-circuits are
      // decided by traffic, not scheduling).
      stats.set("portfolio",
                engine::portfolio_stats_to_json(portfolio.stats()));
      response.set("stats", std::move(stats));
    } else if (kind == RequestKind::kMetrics) {
      for (const JsonValue::Member& member : request_json.members()) {
        check_arg(member.first == "metrics" || member.first == "id",
                  "metrics request cannot carry field '" + member.first +
                      "'");
      }
      const store::StoreStats store_stats =
          engine.store() != nullptr ? engine.store()->stats()
                                    : store::StoreStats{};
      response.set("metrics",
                   engine::metrics_report_json(
                       engine.metrics()->snapshot(), engine.cache_stats(),
                       engine.store() != nullptr ? &store_stats : nullptr));
    } else {
      // The control mirror of {"stats": true}: long sessions drop the
      // result cache in-band instead of restarting the process.
      for (const JsonValue::Member& member : request_json.members()) {
        check_arg(member.first == "clear_cache" || member.first == "id",
                  "clear_cache request cannot carry field '" +
                      member.first + "'");
      }
      const std::size_t dropped = engine.clear_cache();
      response.set("cleared", JsonValue::boolean(true));
      response.set("dropped",
                   JsonValue::number(static_cast<std::int64_t>(dropped)));
    }
  } catch (const std::exception& e) {
    return error_response(request_json.find("id"), e.what()).dump();
  }
  return response.dump();
}

/// Joins a thread on scope exit so that an exception on the reader
/// path can never leak a running writer (which would std::terminate).
class JoinGuard {
 public:
  explicit JoinGuard(std::thread thread) : thread_(std::move(thread)) {}
  ~JoinGuard() {
    if (thread_.joinable()) {
      thread_.join();
    }
  }

 private:
  std::thread thread_;
};

}  // namespace

int run_serve(std::istream& in, std::ostream& out,
              const ServeOptions& options) {
  // One registry for the whole session: the engine registers its
  // instruments first (construction), the transport's own follow — a
  // fixed registration order, so the metrics schema is deterministic.
  engine::Engine::Options engine_options;
  engine_options.cache_capacity = options.cache_capacity;
  engine_options.metrics = std::make_shared<obs::Registry>();
  if (!options.store_path.empty()) {
    // A bad store path (unwritable, foreign version) fails the whole
    // command loudly before any request is read — it cannot silently
    // degrade to RAM-only.
    engine_options.store = std::make_shared<store::ResultStore>(
        store::ResultStore::Options{options.store_path,
                                    options.store_fsync});
  }
  engine::Engine engine(std::move(engine_options));
  // The session's one portfolio: auto requests race through it and it
  // learns winners across the whole traffic mix. Registered after the
  // engine's instruments and before the transport's, so the metrics
  // schema stays registration-order deterministic.
  engine::PortfolioOptions portfolio_options;
  portfolio_options.jobs = options.jobs < 1 ? 1 : options.jobs;
  portfolio_options.race_budget_ms = options.race_budget_ms;
  engine::Portfolio portfolio(engine, portfolio_options);
  obs::Counter& requests_total =
      engine.metrics()->counter("serve.requests");
  obs::Counter& control_total =
      engine.metrics()->counter("serve.control_lines");
  obs::Gauge& inflight_gauge = engine.metrics()->gauge("serve.inflight");
  obs::Gauge& queue_depth_gauge =
      engine.metrics()->gauge("serve.queue_depth");
  const std::size_t jobs = options.jobs < 1 ? 1 : options.jobs;
  // The in-flight window: requests submitted but not yet written. It
  // bounds both the task queue and the results parked in the ordered
  // collector behind a slow request, so memory stays O(jobs) however
  // fast the client streams lines in.
  const std::size_t window = 4 * jobs;

  // Declared before the pool so teardown is safe on every path: the
  // pool's destructor joins its workers (which push into the
  // collector) before the collector dies.
  runtime::OrderedCollector<std::string> collector;
  std::mutex flight_mutex;
  std::condition_variable flight_freed;
  std::size_t in_flight = 0;

  runtime::TaskPool pool(jobs, window);

  std::thread writer_thread([&] {
    // One line per response, flushed immediately and strictly in input
    // order: callers block on the answer to their last request, not on
    // a buffer boundary, and never see reordered answers. The catch
    // keeps a teardown-path pop failure (e.g. a sequence gap after an
    // aborted session) from terminating the process.
    try {
      std::string line;
      while (collector.pop(line)) {
        out << line << "\n" << std::flush;
        {
          std::lock_guard<std::mutex> lock(flight_mutex);
          --in_flight;
          inflight_gauge.record(static_cast<std::int64_t>(in_flight));
        }
        flight_freed.notify_all();
      }
    } catch (const std::exception&) {
      // The reader's own failure is what gets reported; just exit.
    }
  });
  JoinGuard writer_joiner{std::move(writer_thread)};
  // close() is idempotent-safe here: normal shutdown below closes the
  // collector before the guard joins; on an exception the guard would
  // hang without this second chance, so close on every path.
  struct CloseGuard {
    runtime::OrderedCollector<std::string>& collector;
    ~CloseGuard() { collector.close(); }
  } collector_closer{collector};

  // A task that failed to push its response (the pool captured the
  // exception) leaves a permanent gap in the sequence; surfacing it
  // here turns what would be a silent wedge of writer and window into
  // a loud process failure. The timed wait is the polling hook.
  const auto surface_task_failure = [&] {
    if (pool.failure_count() > 0) {
      pool.rethrow_first_failure();
    }
  };
  const auto acquire_slot = [&] {
    std::unique_lock<std::mutex> lock(flight_mutex);
    while (in_flight >= window) {
      surface_task_failure();
      flight_freed.wait_for(lock, std::chrono::milliseconds(50));
    }
    ++in_flight;
    inflight_gauge.record(static_cast<std::int64_t>(in_flight));
  };
  const auto drain = [&] {
    std::unique_lock<std::mutex> lock(flight_mutex);
    while (in_flight != 0) {
      surface_task_failure();
      flight_freed.wait_for(lock, std::chrono::milliseconds(50));
    }
  };

  std::size_t seq = 0;
  std::string line;
  while (std::getline(in, line)) {
    if (support::trim(line).empty()) {
      continue;
    }
    // Parse on the reader thread — it is cheap next to the pipeline
    // and control lines must be told apart before dispatch. A line
    // that does not even parse is answered directly.
    JsonValue request_json;
    RequestKind kind = RequestKind::kPipeline;
    std::string early_error;
    try {
      request_json = JsonValue::parse(line);
      check_arg(request_json.is_object(), "request must be a JSON object");
      kind = classify(request_json);
    } catch (const std::exception& e) {
      early_error = e.what();
    }

    if (!early_error.empty()) {
      const JsonValue* id =
          request_json.is_object() ? request_json.find("id") : nullptr;
      acquire_slot();
      collector.push(seq++, error_response(id, early_error).dump());
      continue;
    }
    if (kind != RequestKind::kPipeline) {
      // Quiesce the pipeline so the probe observes (or clears) a
      // settled cache: the counters then depend only on the request
      // sequence, never on worker interleaving.
      drain();
      control_total.add();
      acquire_slot();
      collector.push(seq++,
                     control_response(request_json, kind, engine, portfolio));
      continue;
    }
    requests_total.add();
    acquire_slot();
    const std::size_t my_seq = seq++;
    pool.submit([&collector, &engine, &portfolio, my_seq, max_iterations =
                     options.max_iterations,
                 request = std::move(request_json)] {
      // my_seq must reach the collector: a skipped index gaps the
      // sequence. pipeline_response handles std::exception itself;
      // this guards the truly exceptional rest (bad_alloc in the
      // error path, ...). Should push *itself* throw, the pool
      // captures it and the reader's waits rethrow it loudly.
      std::string response;
      try {
        response =
            pipeline_response(request, engine, portfolio, max_iterations);
      } catch (...) {
        response =
            "{\"error\":{\"stage\":\"request\","
            "\"message\":\"internal error building the response\"}}";
      }
      collector.push(my_seq, std::move(response));
    });
    queue_depth_gauge.record(
        static_cast<std::int64_t>(pool.queue_depth()));
  }

  drain();
  collector.close();

  if (!options.metrics_csv.empty()) {
    engine::write_metrics_csv(options.metrics_csv, engine);
  }
  return 0;
}

}  // namespace dspaddr::cli
