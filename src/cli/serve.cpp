#include "cli/serve.hpp"

#include <string>

#include "cli/kernel_io.hpp"
#include "engine/engine.hpp"
#include "engine/serialize.hpp"
#include "engine/strategy.hpp"
#include "ir/kernels.hpp"
#include "support/check.hpp"
#include "support/json.hpp"
#include "support/strings.hpp"

namespace dspaddr::cli {
namespace {

using support::JsonValue;

/// Keys a request object may carry; anything else is a hard error so
/// that a typo ("machne") fails loudly instead of being ignored.
constexpr const char* kKnownKeys[] = {
    "id",          "stats",      "clear_cache",
    "builtin",     "kernel_file", "kernel",
    "machine",     "registers",  "modify_range",
    "modify_registers", "iterations", "phase2",
    "time_budget_ms", "stop_after", "layout",
    "strategy",
};

void check_known_keys(const JsonValue& json) {
  for (const JsonValue::Member& member : json.members()) {
    bool known = false;
    for (const char* key : kKnownKeys) {
      if (member.first == key) {
        known = true;
        break;
      }
    }
    check_arg(known, "unknown request field '" + member.first + "'");
  }
}

std::int64_t int_field(const JsonValue& json, const char* key,
                       std::int64_t min_value, std::int64_t fallback) {
  const JsonValue* value = json.find(key);
  if (value == nullptr) {
    return fallback;
  }
  const std::int64_t parsed = value->as_int();
  check_arg(parsed >= min_value,
            std::string(key) + ": value must be >= " +
                std::to_string(min_value));
  return parsed;
}

ir::Kernel kernel_from_request(const JsonValue& json) {
  const JsonValue* builtin = json.find("builtin");
  const JsonValue* file = json.find("kernel_file");
  const JsonValue* inline_kernel = json.find("kernel");
  const int sources = (builtin != nullptr) + (file != nullptr) +
                      (inline_kernel != nullptr);
  check_arg(sources == 1,
            "request needs exactly one of 'builtin', 'kernel_file' or "
            "'kernel'");
  if (builtin != nullptr) {
    return ir::builtin_kernel(builtin->as_string());
  }
  if (file != nullptr) {
    return load_kernel_file(file->as_string());
  }
  return engine::kernel_from_json(*inline_kernel);
}

agu::AguSpec machine_from_request(const JsonValue& json) {
  agu::AguSpec machine;
  if (const JsonValue* name = json.find("machine")) {
    machine = agu::builtin_machine(name->as_string());
  } else {
    machine.name = "custom";
    machine.description = "request-defined AGU";
    machine.address_registers = 1;
    machine.modify_registers = 0;
    machine.modify_range = 1;
  }
  machine.address_registers = static_cast<std::size_t>(
      int_field(json, "registers", 1,
                static_cast<std::int64_t>(machine.address_registers)));
  machine.modify_range =
      int_field(json, "modify_range", 0, machine.modify_range);
  machine.modify_registers = static_cast<std::size_t>(
      int_field(json, "modify_registers", 0,
                static_cast<std::int64_t>(machine.modify_registers)));
  return machine;
}

/// The simulator is O(iterations); a long-lived sequential service
/// must bound the work one request can demand, or a single huge
/// iteration count stalls every request queued behind it.
constexpr std::int64_t kMaxServeIterations = 10'000'000;

engine::Request request_from_json(const JsonValue& json) {
  engine::Request request;
  request.kernel = kernel_from_request(json);
  request.machine = machine_from_request(json);
  if (const JsonValue* iterations = json.find("iterations")) {
    const std::int64_t value = iterations->as_int();
    check_arg(value >= 1, "iterations: value must be >= 1");
    request.iterations = static_cast<std::uint64_t>(value);
  }
  if (const JsonValue* layout = json.find("layout")) {
    request.layout = layout->as_string();
    check_arg(engine::StrategyRegistry::builtin().layout(request.layout) !=
                  nullptr,
              "layout: unknown strategy '" + request.layout + "' (" +
                  engine::known_layout_names() + ")");
  }
  if (const JsonValue* strategy = json.find("strategy")) {
    request.strategy = strategy->as_string();
    check_arg(engine::StrategyRegistry::builtin().allocation(
                  request.strategy) != nullptr,
              "strategy: unknown strategy '" + request.strategy + "' (" +
                  engine::known_strategy_names() + ")");
  }
  if (const JsonValue* phase2 = json.find("phase2")) {
    request.phase2.mode = parse_phase2_mode(phase2->as_string());
  }
  request.phase2.time_budget_ms = int_field(json, "time_budget_ms", 0, 0);
  if (const JsonValue* stop_after = json.find("stop_after")) {
    const std::optional<engine::Stage> stage =
        engine::stage_from_name(stop_after->as_string());
    check_arg(stage.has_value(),
              "stop_after: unknown stage '" + stop_after->as_string() +
                  "' (lower, allocate, plan, codegen, simulate, metrics)");
    request.stop_after = *stage;
  }
  // Cap the *effective* simulated count when the simulate stage will
  // run: without an override the simulator uses the kernel's own
  // iterations, which an inline kernel or a workload file controls
  // just as freely as the "iterations" field.
  if (request.stop_after >= engine::Stage::kSimulate) {
    const std::uint64_t effective_iterations = request.iterations.value_or(
        static_cast<std::uint64_t>(request.kernel.iterations()));
    check_arg(effective_iterations <=
                  static_cast<std::uint64_t>(kMaxServeIterations),
              "iterations: effective count " +
                  std::to_string(effective_iterations) + " exceeds the " +
                  std::to_string(kMaxServeIterations) +
                  " per-request serve limit");
  }
  return request;
}

JsonValue stats_response(const engine::CacheStats& stats) {
  JsonValue json = JsonValue::object();
  json.set("hits", JsonValue::number(static_cast<std::int64_t>(stats.hits)));
  json.set("misses",
           JsonValue::number(static_cast<std::int64_t>(stats.misses)));
  json.set("entries",
           JsonValue::number(static_cast<std::int64_t>(stats.entries)));
  json.set("capacity",
           JsonValue::number(static_cast<std::int64_t>(stats.capacity)));
  return json;
}

}  // namespace

int run_serve(std::istream& in, std::ostream& out,
              const ServeOptions& options) {
  engine::Engine engine(engine::Engine::Options{options.cache_capacity});
  std::string line;
  while (std::getline(in, line)) {
    if (support::trim(line).empty()) {
      continue;
    }
    JsonValue response = JsonValue::object();
    try {
      const JsonValue request_json = JsonValue::parse(line);
      check_arg(request_json.is_object(),
                "request must be a JSON object");
      // Echo the id before any validation so clients can correlate
      // even a rejected request with its response.
      if (const JsonValue* id = request_json.find("id")) {
        response.set("id", *id);
      }
      check_known_keys(request_json);
      const JsonValue* stats = request_json.find("stats");
      const JsonValue* clear_cache = request_json.find("clear_cache");
      if (stats != nullptr && stats->as_bool()) {
        // A stats probe carries nothing but itself (and an id).
        for (const JsonValue::Member& member : request_json.members()) {
          check_arg(member.first == "stats" || member.first == "id",
                    "stats request cannot carry field '" + member.first +
                        "'");
        }
        response.set("stats", stats_response(engine.cache_stats()));
      } else if (clear_cache != nullptr && clear_cache->as_bool()) {
        // The control mirror of {"stats": true}: long sessions drop the
        // result cache in-band instead of restarting the process.
        for (const JsonValue::Member& member : request_json.members()) {
          check_arg(member.first == "clear_cache" || member.first == "id",
                    "clear_cache request cannot carry field '" +
                        member.first + "'");
        }
        engine.clear_cache();
        response.set("cleared", JsonValue::boolean(true));
      } else {
        const engine::Request request = request_from_json(request_json);
        const engine::Result result = engine.run(request);
        // Inline the result members so the response carries exactly the
        // --format=json schema (plus the "id" echo above).
        const JsonValue result_json = engine::result_to_json(result);
        for (const JsonValue::Member& member : result_json.members()) {
          response.set(member.first, member.second);
        }
      }
    } catch (const std::exception& e) {
      JsonValue error = JsonValue::object();
      error.set("stage", JsonValue::string("request"));
      error.set("message", JsonValue::string(e.what()));
      response.set("error", std::move(error));
    }
    // One line per response, flushed immediately: callers block on the
    // answer to their last request, not on a buffer boundary.
    out << response.dump() << "\n" << std::flush;
  }
  return 0;
}

}  // namespace dspaddr::cli
