#include "cli/kernel_io.hpp"

#include <fstream>
#include <sstream>

#include "ir/loop_parser.hpp"
#include "ir/parser.hpp"
#include "support/check.hpp"

namespace dspaddr::cli {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream file(path);
  check_arg(file.good(), "cannot open kernel file '" + path + "'");
  std::ostringstream content;
  content << file.rdbuf();
  return content.str();
}

bool has_extension(const std::string& path, const std::string& ext) {
  return path.size() >= ext.size() &&
         path.compare(path.size() - ext.size(), ext.size(), ext) == 0;
}

}  // namespace

std::string path_stem(const std::string& path) {
  const std::size_t slash = path.find_last_of("/\\");
  const std::size_t start = slash == std::string::npos ? 0 : slash + 1;
  const std::size_t dot = path.find_last_of('.');
  const std::size_t end =
      (dot == std::string::npos || dot <= start) ? path.size() : dot;
  return path.substr(start, end - start);
}

ir::Kernel load_kernel_file(const std::string& path) {
  const std::string text = read_file(path);
  if (has_extension(path, ".c")) {
    return ir::parse_c_loop(text, path_stem(path));
  }
  return ir::parse_kernel(text);
}

}  // namespace dspaddr::cli
