// Loading kernels from workload files.
//
// Dispatches on the file extension: `.c` goes through the C-like loop
// front-end (ir::parse_c_loop), anything else through the line-based
// mini-language (ir::parse_kernel). The kernel name of a `.c` workload
// is the file's stem ("workloads/fir16.c" -> "fir16").
#pragma once

#include <string>

#include "ir/kernel.hpp"

namespace dspaddr::cli {

/// The file name without directory and extension.
std::string path_stem(const std::string& path);

/// Reads and parses one kernel file; throws Error on I/O or parse
/// failure.
ir::Kernel load_kernel_file(const std::string& path);

}  // namespace dspaddr::cli
