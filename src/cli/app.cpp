#include "cli/app.hpp"

#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <system_error>

#include "agu/machine_desc.hpp"
#include "cli/kernel_io.hpp"
#include "cli/options.hpp"
#include "cli/pipeline.hpp"
#include "cli/serve.hpp"
#include "engine/portfolio.hpp"
#include "engine/serialize.hpp"
#include "engine/strategy.hpp"
#include "eval/batch.hpp"
#include "eval/compare.hpp"
#include "ir/kernels.hpp"
#include "store/result_store.hpp"
#include "support/check.hpp"
#include "support/csv.hpp"
#include "support/json.hpp"
#include "support/table.hpp"

namespace dspaddr::cli {
namespace {

constexpr const char* kVersion = "0.1.0";

/// The `--format=json` rendering of a portfolio race: the compare-style
/// rows plus the race's own decisions.
support::JsonValue portfolio_race_json(const engine::PortfolioReport& race,
                                       const std::string& kernel,
                                       const std::string& machine) {
  support::JsonValue json = support::JsonValue::object();
  json.set("winner_layout", support::JsonValue::string(race.winner_layout));
  json.set("winner_strategy",
           support::JsonValue::string(race.winner_strategy));
  json.set("learned_hit", support::JsonValue::boolean(race.learned_hit));
  json.set("short_circuit",
           support::JsonValue::boolean(race.short_circuit));
  json.set("reraced", support::JsonValue::boolean(race.reraced));
  json.set("race",
           eval::compare_to_json(
               eval::compare_from_portfolio(race, kernel, machine)));
  return json;
}

int command_run(const std::vector<std::string>& args, std::ostream& out) {
  const RunOptions options = parse_run_options(args);
  const ir::Kernel kernel = load_kernel_file(options.kernel_path);
  const agu::AguSpec machine = resolve_machine(options);
  core::Phase2Options phase2;
  phase2.mode = options.phase2;
  phase2.time_budget_ms = options.time_budget_ms;
  phase2.jobs = options.phase2_jobs;
  phase2.steal_grain = options.phase2_steal_grain;
  if (options.phase2_window != 0) {
    phase2.tile_width = options.phase2_window;
  }
  phase2.tile_width_auto = options.phase2_window_auto;
  // One-shot run: no in-process traffic to memoize across (capacity 0),
  // but with --store the persistent tier still answers repeats of
  // earlier invocations.
  engine::Engine::Options engine_options;
  engine_options.cache_capacity = 0;
  if (!options.store_path.empty()) {
    engine_options.store = std::make_shared<store::ResultStore>(
        store::ResultStore::Options{options.store_path,
                                    options.store_fsync});
  }
  engine::Engine engine(std::move(engine_options));
  engine::Request request;
  request.kernel = kernel;
  request.machine = machine;
  request.layout = options.layout;
  request.strategy = options.strategy;
  request.phase2 = phase2;
  request.iterations = options.iterations;

  engine::Result report;
  engine::PortfolioReport race;
  const bool raced = engine::Portfolio::is_auto(request);
  if (raced) {
    engine::PortfolioOptions portfolio_options;
    portfolio_options.jobs = options.jobs;
    portfolio_options.race_budget_ms = options.race_budget_ms;
    engine::Portfolio portfolio(engine, portfolio_options);
    report = portfolio.run(request, &race);
  } else {
    report = engine.run(request);
  }
  if (!options.metrics_csv.empty()) {
    engine::write_metrics_csv(options.metrics_csv, engine);
  }
  if (options.format == OutputFormat::kJson) {
    // JSON carries failures in-band (the "error" member), like a serve
    // response. The run surface alone appends per-call "timings" —
    // serve responses never carry them, keeping the shared schema
    // byte-identical across surfaces and reruns.
    support::JsonValue json = engine::result_to_json(report);
    support::JsonValue timings = support::JsonValue::object();
    support::JsonValue stage_ms = support::JsonValue::object();
    for (std::size_t i = 0; i < engine::kStageCount; ++i) {
      stage_ms.set(engine::stage_name(static_cast<engine::Stage>(i)),
                   support::JsonValue::number(report.stage_ms[i]));
    }
    timings.set("stage_ms", std::move(stage_ms));
    timings.set("total_ms", support::JsonValue::number(report.total_ms));
    timings.set("tier", support::JsonValue::string(
                            report.cache_hit   ? "ram_hit"
                            : report.store_hit ? "store_hit"
                                               : "cold"));
    json.set("timings", std::move(timings));
    if (raced) {
      json.set("portfolio",
               portfolio_race_json(race, kernel.name(), machine.name));
    }
    out << json.dump() << "\n";
    return report.ok() && report.verified ? 0 : 1;
  }
  if (!report.ok()) {
    throw Error(std::string(engine::stage_name(report.error->stage)) +
                ": " + report.error->message);
  }
  if (options.format == OutputFormat::kCsv) {
    out << report_to_csv(report);
  } else {
    out << report_to_text(report, options.show_program);
    if (raced) {
      out << "\nportfolio race (winner " << race.winner_layout << "/"
          << race.winner_strategy
          << (race.short_circuit ? ", learned short-circuit" : "")
          << (race.reraced ? ", drift re-race" : "")
          << "; deltas vs winner, * marks the cost minimum):\n\n"
          << eval::compare_to_table(eval::compare_from_portfolio(
                                        race, kernel.name(), machine.name))
                 .to_string();
    }
  }
  return report.verified ? 0 : 1;
}

int command_batch(const std::vector<std::string>& args, std::ostream& out) {
  const BatchOptions options = parse_batch_options(args);

  eval::BatchConfig config;
  for (const std::string& path : options.kernel_paths) {
    config.kernels.push_back(load_kernel_file(path));
  }
  for (const std::string& name : options.builtin_kernels) {
    config.kernels.push_back(ir::builtin_kernel(name));
  }
  // The grid resolves names against the builtin catalog layered with
  // every --machine-file: a file can add new targets or replace a
  // builtin by name, and an empty --machines sweeps the whole registry.
  agu::MachineRegistry registry = agu::MachineRegistry::with_builtins();
  for (const std::string& path : options.machine_files) {
    registry.load_file(path);
  }
  if (options.machines.empty()) {
    config.machines = registry.all();
  } else {
    for (const std::string& name : options.machines) {
      config.machines.push_back(registry.get(name));
    }
  }
  config.register_counts = options.register_counts;
  config.modify_ranges = options.modify_ranges;
  config.layouts = options.layouts;
  config.strategies = options.strategies;
  config.jobs = options.jobs;
  config.race_budget_ms = options.race_budget_ms;
  config.phase2.mode = options.phase2;
  config.phase2.time_budget_ms = options.time_budget_ms;
  config.phase2.jobs = options.phase2_jobs;
  config.phase2.steal_grain = options.phase2_steal_grain;
  if (options.phase2_window != 0) {
    config.phase2.tile_width = options.phase2_window;
  }
  config.phase2.tile_width_auto = options.phase2_window_auto;
  if (!options.store_path.empty()) {
    config.store = std::make_shared<store::ResultStore>(
        store::ResultStore::Options{options.store_path,
                                    options.store_fsync});
  }
  config.metrics_csv = options.metrics_csv;

  const eval::BatchResult result = eval::run_batch(config);
  const std::string rendered = options.format == OutputFormat::kTable
                                   ? eval::batch_to_table(result).to_string()
                                   : eval::batch_to_csv(result).to_string();
  if (options.output_path.empty()) {
    out << rendered;
  } else {
    std::ofstream file(options.output_path);
    check_arg(file.good(),
              "cannot write output file '" + options.output_path + "'");
    file << rendered;
    file.flush();
    check_arg(file.good(),
              "failed writing output file '" + options.output_path + "'");
  }
  return result.failures == 0 ? 0 : 1;
}

/// compare's --kernel accepts a workload file path or a builtin kernel
/// name; an existing file wins over a same-named builtin.
ir::Kernel load_kernel_file_or_builtin(const std::string& name) {
  // Must be a *regular* file: a directory opens "successfully" via
  // ifstream and would bypass the builtin fallback with a confusing
  // parse error.
  std::error_code ec;
  if (std::filesystem::is_regular_file(name, ec)) {
    return load_kernel_file(name);
  }
  try {
    return ir::builtin_kernel(name);
  } catch (const Error&) {
    throw Error("'" + name +
                "' is neither a readable workload file nor a builtin "
                "kernel");
  }
}

/// True when a compare axis list is the single value "auto" (the parse
/// step already rejects "auto" mixed with other names).
bool is_auto_axis(const std::vector<std::string>& names) {
  return names.size() == 1 && names.front() == engine::kAutoStrategy;
}

int command_compare(const std::vector<std::string>& args,
                    std::ostream& out) {
  const CompareOptions options = parse_compare_options(args);

  eval::CompareConfig config;
  config.kernel = load_kernel_file_or_builtin(options.kernel);
  config.machine = resolve_machine(options);
  config.layouts = options.layouts;
  config.strategies = options.strategies;
  config.phase2.mode = options.phase2;
  config.phase2.time_budget_ms = options.time_budget_ms;
  config.iterations = options.iterations;
  config.jobs = options.jobs;

  eval::CompareResult result;
  bool raced = false;
  engine::PortfolioReport race;
  if (is_auto_axis(options.layouts) || is_auto_axis(options.strategies)) {
    // An auto axis races instead of gridding: losers get cancelled the
    // moment their lower bound crosses the incumbent, so the table
    // arrives at the winner's latency, not the grid's.
    engine::Request request;
    request.kernel = config.kernel;
    request.machine = config.machine;
    request.layout = is_auto_axis(options.layouts)
                         ? std::string(engine::kAutoStrategy)
                         : options.layouts.empty() ? engine::kDefaultLayout
                                                   : options.layouts.front();
    request.strategy = is_auto_axis(options.strategies)
                           ? std::string(engine::kAutoStrategy)
                           : options.strategies.empty()
                               ? engine::kDefaultStrategy
                               : options.strategies.front();
    request.phase2 = config.phase2;
    request.iterations = options.iterations;
    engine::Engine engine;
    engine::PortfolioOptions portfolio_options;
    portfolio_options.jobs = options.jobs;
    portfolio_options.race_budget_ms = options.race_budget_ms;
    engine::Portfolio portfolio(engine, portfolio_options);
    portfolio.run(request, &race);
    result = eval::compare_from_portfolio(race, config.kernel.name(),
                                          config.machine.name);
    raced = true;
  } else {
    result = eval::run_compare(config);
  }
  if (options.format == OutputFormat::kJson) {
    out << eval::compare_to_json(result).dump() << "\n";
  } else if (options.format == OutputFormat::kCsv) {
    out << eval::compare_to_csv(result).to_string();
  } else {
    out << "compare: " << result.kernel << " on " << result.machine
        << (raced ? " (raced; deltas vs winner " : " (deltas vs ")
        << result.reference_layout << "/" << result.reference_strategy
        << "; * marks the cost minimum)\n\n"
        << eval::compare_to_table(result).to_string();
  }
  return result.failures == 0 ? 0 : 1;
}

int command_serve(const std::vector<std::string>& args, std::istream& in,
                  std::ostream& out) {
  const ServeOptions options = parse_serve_options(args);
  return run_serve(in, out, options);
}

/// Renders the modify window of the listing: the paper's symmetric M
/// prints as a single number; richer machines show the full window.
std::string window_text(const agu::MachineSpec& machine) {
  if (machine.modify_lo == -machine.modify_hi) {
    return std::to_string(machine.modify_range());
  }
  return "[" + std::to_string(machine.modify_lo) + ", " +
         std::to_string(machine.modify_hi) + "]";
}

int command_machines(const std::vector<std::string>& args,
                     std::ostream& out) {
  const MachinesOptions options = parse_machines_options(args);
  agu::MachineRegistry registry = agu::MachineRegistry::with_builtins();
  for (const std::string& path : options.machine_files) {
    registry.load_file(path);
  }
  if (!options.show.empty()) {
    const agu::MachineSpec machine = registry.get(options.show);
    if (options.format == OutputFormat::kJson) {
      out << agu::machine_to_json(machine).dump() << "\n";
    } else {
      // The canonical .machine text doubles as the human-readable view
      // and a valid --machine-file (parse(emit(spec)) == spec).
      out << agu::machine_to_text(machine);
    }
    return 0;
  }
  if (options.format == OutputFormat::kJson) {
    support::JsonValue list = support::JsonValue::array();
    for (const agu::AguSpec& machine : registry.all()) {
      list.push_back(agu::machine_to_json(machine));
    }
    out << list.dump() << "\n";
    return 0;
  }
  if (options.format == OutputFormat::kCsv) {
    support::CsvWriter csv(
        {"name", "K", "L", "M", "addressing", "description"});
    for (const agu::AguSpec& machine : registry.all()) {
      csv.add_row({machine.name,
                   std::to_string(machine.address_registers()),
                   std::to_string(machine.modify_registers()),
                   window_text(machine), to_string(machine.addressing),
                   machine.description});
    }
    out << csv.to_string();
    return 0;
  }
  support::Table table(
      {"name", "K", "L", "M", "addressing", "description"});
  for (const agu::AguSpec& machine : registry.all()) {
    table.add_row({machine.name,
                   std::to_string(machine.address_registers()),
                   std::to_string(machine.modify_registers()),
                   window_text(machine), to_string(machine.addressing),
                   machine.description});
  }
  out << table.to_string();
  return 0;
}

int command_kernels(const std::vector<std::string>& args,
                    std::ostream& out) {
  const ListOptions options = parse_list_options(args, "kernels");
  if (options.format == OutputFormat::kJson) {
    support::JsonValue list = support::JsonValue::array();
    for (const ir::Kernel& kernel : ir::builtin_kernels()) {
      support::JsonValue entry = support::JsonValue::object();
      entry.set("name", support::JsonValue::string(kernel.name()));
      entry.set("arrays",
                support::JsonValue::number(
                    static_cast<std::int64_t>(kernel.arrays().size())));
      entry.set("accesses",
                support::JsonValue::number(static_cast<std::int64_t>(
                    kernel.accesses().size())));
      entry.set("iterations",
                support::JsonValue::number(kernel.iterations()));
      entry.set("description",
                support::JsonValue::string(kernel.description()));
      list.push_back(std::move(entry));
    }
    out << list.dump() << "\n";
    return 0;
  }
  if (options.format == OutputFormat::kCsv) {
    support::CsvWriter csv({"name", "arrays", "accesses", "iterations",
                            "description"});
    for (const ir::Kernel& kernel : ir::builtin_kernels()) {
      csv.add_row({kernel.name(), std::to_string(kernel.arrays().size()),
                   std::to_string(kernel.accesses().size()),
                   std::to_string(kernel.iterations()),
                   kernel.description()});
    }
    out << csv.to_string();
    return 0;
  }
  support::Table table({"name", "arrays", "accesses", "iterations",
                        "description"});
  for (const ir::Kernel& kernel : ir::builtin_kernels()) {
    table.add_row({kernel.name(), std::to_string(kernel.arrays().size()),
                   std::to_string(kernel.accesses().size()),
                   std::to_string(kernel.iterations()),
                   kernel.description()});
  }
  out << table.to_string();
  return 0;
}

}  // namespace

std::string usage_text() {
  return R"(dspaddr — register-constrained address computation pipeline

usage: dspaddr <command> [options]

commands:
  run       Run one kernel through the whole pipeline
              --kernel <file>        workload file (.c or .kern) [required]
              --machine <name>       catalog AGU supplying K/L/M defaults
              --machine-file <file>  .machine file layered over the
                                     catalog (--machine may then name any
                                     machine it defines; without --machine
                                     its first machine runs)
              --registers <K>        address registers (overrides machine)
              --modify-range <M>     free post-modify range (overrides)
              --modify-registers <L> modify registers (overrides)
              --iterations <n>       simulated iterations (default: kernel)
              --layout <name>        memory-layout strategy (contiguous,
                                     declaration-padded, soa-liao, goa,
                                     or auto to race them)
              --strategy <name>      allocation strategy (two-phase, exact,
                                     naive, random-merge, round-robin,
                                     greedy-online, or auto to race them;
                                     see README "Portfolio racing")
              --phase2 <mode>        auto|exact|heuristic|tiled phase-2
                                     solver (default: auto — exact for
                                     small kernels; tiled = windowed
                                     exact solves, stitched)
              --phase2-jobs <n>      worker threads of the phase-2
                                     search (default: 1; costs are
                                     identical at any level)
              --time-budget-ms <ms>  wall-clock cap of the exact search
                                     (default: 0 = node budget only)
              --jobs <n>             racers in flight when an axis is
                                     auto (default: all hardware
                                     threads; the winner is identical
                                     at any level)
              --race-budget-ms <ms>  wall-clock deadline of an auto
                                     race (default: 0 = run every
                                     racer to completion or early
                                     bound-cancellation)
              --format table|csv|json
                                     output format (default: table); json
                                     uses the serve response schema plus
                                     a per-call "timings" member
              --program              also print the address program
              --store <file>         persistent result store: repeats of
                                     earlier --store runs answer from
                                     the log instead of recomputing
              --store-fsync          fsync the store on every append
              --metrics-csv <file>   dump the metrics registry as CSV
                                     on exit
  batch     Sweep kernels x machines x registers x modify ranges
            x layouts x strategies
              --kernel <file>        workload file (repeatable)
              --builtin <names>      builtin kernels, comma list
              --machines <names>     machine names (default: the whole
                                     registry incl. --machine-file ones)
              --machine-file <file>  .machine file layered over the
                                     catalog (repeatable)
              --registers <list>     K values, comma list
              --modify-range <list>  M values, comma list
              --layout <list>        layout strategies, comma list
                                     (auto entries race per cell)
              --strategy <list>      allocation strategies, comma list
                                     (auto entries race per cell)
              --jobs <n>             worker threads (default: all
                                     hardware threads; CSV bytes never
                                     depend on the level)
              --race-budget-ms <ms>  wall-clock deadline of each auto
                                     cell's race (default: 0; nonzero
                                     trades deterministic auto rows
                                     for a latency cap)
              --phase2 <mode>        auto|exact|heuristic|tiled phase-2
                                     solver
              --phase2-jobs <n>      phase-2 search threads per row
                                     (default: 1; cost columns never
                                     depend on the level)
              --time-budget-ms <ms>  wall-clock cap of the exact search
              --format csv|table     output format (default: csv)
              --out <file>           write output to a file
              --store <file>         persistent result store shared by
                                     the sweep's engine
              --store-fsync          fsync the store on every append
              --metrics-csv <file>   dump the metrics registry as CSV
                                     on exit
  compare   Run one kernel across a strategy set on a shared engine and
            print a cost/cycles delta table
              --kernel <name|file>   builtin kernel or workload file [required]
              --machine/--machine-file/--registers/--modify-range/
              --modify-registers     as in run
              --layout <list>        layouts to compare (default:
                                     contiguous); auto (alone) races
                                     every layout instead of gridding
              --strategy <list>      strategies (default: all
                                     registered); auto (alone) races
              --jobs <n>             grid worker threads, or racers in
                                     flight of an auto race (default:
                                     all hardware threads; grid bytes
                                     identical at any level)
              --race-budget-ms <ms>  wall-clock deadline of an auto
                                     race (default: 0 = none)
              --phase2, --time-budget-ms, --iterations as in run
              --format table|csv|json (default: table)
  serve     JSON-lines service loop: one request object per stdin line,
            one response object per stdout line, in input order
            whatever the concurrency (see README "Serving at scale")
              --cache-capacity <n>   engine result-cache size
                                     (default: 256, 0 disables)
              --jobs <n>             pipeline worker threads (default:
                                     all hardware threads; responses
                                     are byte-identical at any level)
              --max-iterations <n>   per-request cap on simulated
                                     iterations (default: 10000000);
                                     larger requests are rejected
                                     in-band
              --race-budget-ms <ms>  wall-clock deadline of each
                                     "auto" request's race (default:
                                     0; requests can override with a
                                     "race_budget_ms" member)
              --store <file>         persistent result store under the
                                     RAM cache: a restarted serve
                                     answers previously-seen requests
                                     from the log, byte-identically
              --store-fsync          fsync the store on every append
              --metrics-csv <file>   dump the metrics registry as CSV
                                     when the session ends
  machines  List the AGU machine registry (--format table|csv|json);
            `machines show <name>` prints one full declarative spec
            (.machine text, or --format json)
              --machine-file <file>  .machine file layered over the
                                     catalog (repeatable)
  kernels   List the builtin kernel library (--format table|csv|json)
  version   Print the tool version
  help      Print this text
)";
}

int run_cli(const std::vector<std::string>& args, std::ostream& out,
            std::ostream& err) {
  if (args.empty()) {
    err << usage_text();
    return 2;
  }
  const std::string& command = args.front();
  const std::vector<std::string> rest(args.begin() + 1, args.end());
  try {
    if (command == "run") {
      return command_run(rest, out);
    }
    if (command == "batch") {
      return command_batch(rest, out);
    }
    if (command == "compare") {
      return command_compare(rest, out);
    }
    if (command == "serve") {
      return command_serve(rest, std::cin, out);
    }
    if (command == "machines") {
      return command_machines(rest, out);
    }
    if (command == "kernels") {
      return command_kernels(rest, out);
    }
    if (command == "version") {
      out << "dspaddr " << kVersion << "\n";
      return 0;
    }
    if (command == "help" || command == "--help" || command == "-h") {
      out << usage_text();
      return 0;
    }
    err << "dspaddr: unknown command '" << command << "'\n\n"
        << usage_text();
    return 2;
  } catch (const UsageError& e) {
    err << "dspaddr: " << e.what() << "\n\n" << usage_text();
    return 2;
  } catch (const Error& e) {
    err << "dspaddr: " << e.what() << "\n";
    return 1;
  }
}

}  // namespace dspaddr::cli
