#include "cli/app.hpp"

#include <fstream>
#include <iostream>

#include "cli/kernel_io.hpp"
#include "cli/options.hpp"
#include "cli/pipeline.hpp"
#include "cli/serve.hpp"
#include "engine/serialize.hpp"
#include "eval/batch.hpp"
#include "ir/kernels.hpp"
#include "support/check.hpp"
#include "support/table.hpp"

namespace dspaddr::cli {
namespace {

constexpr const char* kVersion = "0.1.0";

int command_run(const std::vector<std::string>& args, std::ostream& out) {
  const RunOptions options = parse_run_options(args);
  const ir::Kernel kernel = load_kernel_file(options.kernel_path);
  const agu::AguSpec machine = resolve_machine(options);
  core::Phase2Options phase2;
  phase2.mode = options.phase2;
  phase2.time_budget_ms = options.time_budget_ms;
  const engine::Result report =
      run_pipeline(kernel, machine, options.iterations, phase2);
  if (options.format == OutputFormat::kJson) {
    // JSON carries failures in-band (the "error" member), like a serve
    // response.
    out << engine::result_to_json_line(report) << "\n";
    return report.ok() && report.verified ? 0 : 1;
  }
  if (!report.ok()) {
    throw Error(std::string(engine::stage_name(report.error->stage)) +
                ": " + report.error->message);
  }
  if (options.format == OutputFormat::kCsv) {
    out << report_to_csv(report);
  } else {
    out << report_to_text(report, options.show_program);
  }
  return report.verified ? 0 : 1;
}

int command_batch(const std::vector<std::string>& args, std::ostream& out) {
  const BatchOptions options = parse_batch_options(args);

  eval::BatchConfig config;
  for (const std::string& path : options.kernel_paths) {
    config.kernels.push_back(load_kernel_file(path));
  }
  for (const std::string& name : options.builtin_kernels) {
    config.kernels.push_back(ir::builtin_kernel(name));
  }
  if (options.machines.empty()) {
    config.machines = agu::builtin_machines();
  } else {
    for (const std::string& name : options.machines) {
      config.machines.push_back(agu::builtin_machine(name));
    }
  }
  config.register_counts = options.register_counts;
  config.modify_ranges = options.modify_ranges;
  config.jobs = options.jobs;
  config.phase2.mode = options.phase2;
  config.phase2.time_budget_ms = options.time_budget_ms;

  const eval::BatchResult result = eval::run_batch(config);
  const std::string rendered = options.format == OutputFormat::kTable
                                   ? eval::batch_to_table(result).to_string()
                                   : eval::batch_to_csv(result).to_string();
  if (options.output_path.empty()) {
    out << rendered;
  } else {
    std::ofstream file(options.output_path);
    check_arg(file.good(),
              "cannot write output file '" + options.output_path + "'");
    file << rendered;
    file.flush();
    check_arg(file.good(),
              "failed writing output file '" + options.output_path + "'");
  }
  return result.failures == 0 ? 0 : 1;
}

int command_serve(const std::vector<std::string>& args, std::istream& in,
                  std::ostream& out) {
  const ServeOptions options = parse_serve_options(args);
  return run_serve(in, out, options);
}

int command_machines(std::ostream& out) {
  support::Table table({"name", "K", "L", "M", "description"});
  for (const agu::AguSpec& machine : agu::builtin_machines()) {
    table.add_row({machine.name, std::to_string(machine.address_registers),
                   std::to_string(machine.modify_registers),
                   std::to_string(machine.modify_range),
                   machine.description});
  }
  out << table.to_string();
  return 0;
}

int command_kernels(std::ostream& out) {
  support::Table table({"name", "arrays", "accesses", "iterations",
                        "description"});
  for (const ir::Kernel& kernel : ir::builtin_kernels()) {
    table.add_row({kernel.name(), std::to_string(kernel.arrays().size()),
                   std::to_string(kernel.accesses().size()),
                   std::to_string(kernel.iterations()),
                   kernel.description()});
  }
  out << table.to_string();
  return 0;
}

}  // namespace

std::string usage_text() {
  return R"(dspaddr — register-constrained address computation pipeline

usage: dspaddr <command> [options]

commands:
  run       Run one kernel through the whole pipeline
              --kernel <file>        workload file (.c or .kern) [required]
              --machine <name>       builtin AGU supplying K/L/M defaults
              --registers <K>        address registers (overrides machine)
              --modify-range <M>     free post-modify range (overrides)
              --modify-registers <L> modify registers (overrides)
              --iterations <n>       simulated iterations (default: kernel)
              --phase2 <mode>        auto|exact|heuristic phase-2 solver
                                     (default: auto — exact for small kernels)
              --time-budget-ms <ms>  wall-clock cap of the exact search
                                     (default: 0 = node budget only)
              --format table|csv|json
                                     output format (default: table); json
                                     uses the serve response schema
              --program              also print the address program
  batch     Sweep kernels x machines x registers x modify ranges
              --kernel <file>        workload file (repeatable)
              --builtin <names>      builtin kernels, comma list
              --machines <names>     builtin machines (default: all)
              --registers <list>     K values, comma list
              --modify-range <list>  M values, comma list
              --jobs <n>             worker threads (default: 1)
              --phase2 <mode>        auto|exact|heuristic phase-2 solver
              --time-budget-ms <ms>  wall-clock cap of the exact search
              --format csv|table     output format (default: csv)
              --out <file>           write output to a file
  serve     JSON-lines service loop: one request object per stdin line,
            one response object per stdout line (see README)
              --cache-capacity <n>   engine result-cache size
                                     (default: 256, 0 disables)
  machines  List the builtin AGU catalog
  kernels   List the builtin kernel library
  version   Print the tool version
  help      Print this text
)";
}

int run_cli(const std::vector<std::string>& args, std::ostream& out,
            std::ostream& err) {
  if (args.empty()) {
    err << usage_text();
    return 2;
  }
  const std::string& command = args.front();
  const std::vector<std::string> rest(args.begin() + 1, args.end());
  try {
    if (command == "run") {
      return command_run(rest, out);
    }
    if (command == "batch") {
      return command_batch(rest, out);
    }
    if (command == "serve") {
      return command_serve(rest, std::cin, out);
    }
    if (command == "machines") {
      return command_machines(out);
    }
    if (command == "kernels") {
      return command_kernels(out);
    }
    if (command == "version") {
      out << "dspaddr " << kVersion << "\n";
      return 0;
    }
    if (command == "help" || command == "--help" || command == "-h") {
      out << usage_text();
      return 0;
    }
    err << "dspaddr: unknown command '" << command << "'\n\n"
        << usage_text();
    return 2;
  } catch (const UsageError& e) {
    err << "dspaddr: " << e.what() << "\n\n" << usage_text();
    return 2;
  } catch (const Error& e) {
    err << "dspaddr: " << e.what() << "\n";
    return 1;
  }
}

}  // namespace dspaddr::cli
