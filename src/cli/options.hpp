// Command-line option parsing for the dspaddr tool.
//
// Kept free of I/O so that flag handling is unit-testable: each parse_*
// function consumes the argument vector of one subcommand and either
// returns a fully-validated options struct or throws UsageError with a
// message the tool prints alongside the usage text.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/allocator.hpp"
#include "engine/strategy.hpp"
#include "support/check.hpp"

namespace dspaddr::cli {

/// Thrown on malformed command lines (unknown flag, missing value, ...).
class UsageError : public Error {
public:
  explicit UsageError(const std::string& what) : Error(what) {}
};

enum class OutputFormat {
  kTable,
  kCsv,
  /// engine::Result serialization, same schema as `serve` responses.
  kJson,
};

/// Parses "csv" / "table" / "json"; throws UsageError otherwise.
OutputFormat parse_format(const std::string& text);

/// Parses "auto" / "exact" / "heuristic" / "tiled"; throws UsageError
/// otherwise.
core::Phase2Options::Mode parse_phase2_mode(const std::string& text);

/// Default worker count of `--jobs`: the hardware concurrency, at
/// least 1. Shared by batch and serve so the two surfaces can never
/// disagree about what "use the machine" means.
std::size_t default_jobs();

/// Parses a `--jobs` value: a positive integer (0 and non-numeric
/// values are rejected with the same message on every subcommand).
std::size_t parse_jobs(const std::string& text);

/// Options of `dspaddr run`: one kernel through the whole pipeline.
struct RunOptions {
  std::string kernel_path;
  /// Builtin machine supplying defaults for K, L and M.
  std::optional<std::string> machine;
  /// `.machine` file layered over the catalog (--machine can then name
  /// any machine it defines; without --machine its first machine runs).
  std::optional<std::string> machine_file;
  /// Explicit overrides; win over the machine's values.
  std::optional<std::size_t> registers;
  std::optional<std::int64_t> modify_range;
  std::optional<std::size_t> modify_registers;
  /// Simulated loop iterations (default: the kernel's own count).
  std::optional<std::uint64_t> iterations;
  /// Memory-layout strategy (engine registry name, or "auto" to race
  /// every registered layout through the portfolio engine).
  std::string layout = engine::kDefaultLayout;
  /// Allocation strategy (engine registry name, or "auto").
  std::string strategy = engine::kDefaultStrategy;
  /// Phase-2 solver selection (auto: exact for small kernels).
  core::Phase2Options::Mode phase2 = core::Phase2Options::Mode::kAuto;
  /// Wall-clock budget of the exact phase-2 search; 0 = node cap only.
  std::int64_t time_budget_ms = 0;
  /// Worker threads of the phase-2 search itself (not the grid runner's
  /// --jobs): > 1 runs the search on a work-stealing pool. Costs are
  /// identical at any level; node counts may vary.
  std::size_t phase2_jobs = 1;
  /// Donated-subtree grain of the parallel phase-2 search
  /// (--phase2-steal-grain); 0 = the built-in default. Tuning it never
  /// changes costs.
  std::size_t phase2_steal_grain = 0;
  /// Tiled window width (--phase2-window): 0 keeps the default fixed
  /// width; N >= 8 sets it; "auto" enables per-window auto-tuning.
  std::size_t phase2_window = 0;
  bool phase2_window_auto = false;
  /// Racers in flight when a layout/strategy axis is "auto". The
  /// winner is identical at any level; only the wall clock moves.
  std::size_t jobs = default_jobs();
  /// Wall-clock deadline of an "auto" race in milliseconds; 0 = every
  /// racer runs to completion (or early bound-cancellation).
  std::int64_t race_budget_ms = 0;
  OutputFormat format = OutputFormat::kTable;
  /// Also print the generated address program.
  bool show_program = false;
  /// Persistent result store (store/result_store.hpp); empty = none.
  /// Repeated runs against the same file answer from the store.
  std::string store_path;
  /// fsync the store after every append (--store-fsync).
  bool store_fsync = false;
  /// Write the metrics registry as CSV to this path on exit; empty =
  /// no dump.
  std::string metrics_csv;
};

/// Options of `dspaddr batch`: a kernels x machines x K x M grid.
struct BatchOptions {
  /// Kernel files (repeatable --kernel).
  std::vector<std::string> kernel_paths;
  /// Builtin kernel names (comma list), e.g. "fir,biquad".
  std::vector<std::string> builtin_kernels;
  /// Machine names (comma list); empty = the whole registry (builtin
  /// catalog plus every --machine-file machine).
  std::vector<std::string> machines;
  /// `.machine` files layered over the catalog (repeatable).
  std::vector<std::string> machine_files;
  /// K values to sweep; empty = each machine's own K.
  std::vector<std::size_t> register_counts;
  /// M values to sweep; empty = each machine's own M.
  std::vector<std::int64_t> modify_ranges;
  /// Layout strategies to sweep (comma list); empty = default layout.
  /// "auto" entries race every registered layout per cell.
  std::vector<std::string> layouts;
  /// Allocation strategies to sweep; empty = default strategy. "auto"
  /// entries race every registered allocator per cell.
  std::vector<std::string> strategies;
  /// Worker threads of the grid runner; never affects the CSV bytes.
  std::size_t jobs = default_jobs();
  /// Wall-clock deadline of each cell's "auto" race; 0 = none. A
  /// deadline makes which racers finish timing-dependent, so it is the
  /// one batch flag that can change the CSV bytes of auto cells.
  std::int64_t race_budget_ms = 0;
  /// Phase-2 solver selection (auto: exact for small kernels).
  core::Phase2Options::Mode phase2 = core::Phase2Options::Mode::kAuto;
  /// Wall-clock budget of the exact phase-2 search; 0 = node cap only.
  std::int64_t time_budget_ms = 0;
  /// Worker threads of each row's phase-2 search (the grid runner's
  /// --jobs parallelizes across rows instead). Costs are identical at
  /// any level, so the CSV cost columns never depend on it.
  std::size_t phase2_jobs = 1;
  /// Donated-subtree grain of each row's parallel phase-2 search
  /// (--phase2-steal-grain); 0 = the built-in default.
  std::size_t phase2_steal_grain = 0;
  /// Tiled window width (--phase2-window): 0 = default fixed width,
  /// N >= 8 sets it, "auto" tunes per window.
  std::size_t phase2_window = 0;
  bool phase2_window_auto = false;
  OutputFormat format = OutputFormat::kCsv;
  /// Output file; empty = stdout.
  std::string output_path;
  /// Persistent result store shared by the sweep's engine; empty =
  /// none. A later sweep over the same file answers repeated cells
  /// from the store.
  std::string store_path;
  /// fsync the store after every append (--store-fsync).
  bool store_fsync = false;
  /// Write the metrics registry as CSV to this path on exit; empty =
  /// no dump.
  std::string metrics_csv;
};

/// Options of `dspaddr compare`: one kernel across a strategy set.
struct CompareOptions {
  /// Workload file path or builtin kernel name (files win on ambiguity).
  std::string kernel;
  /// Builtin machine supplying defaults for K, L and M.
  std::optional<std::string> machine;
  /// `.machine` file layered over the catalog.
  std::optional<std::string> machine_file;
  /// Explicit overrides; win over the machine's values.
  std::optional<std::size_t> registers;
  std::optional<std::int64_t> modify_range;
  std::optional<std::size_t> modify_registers;
  std::optional<std::uint64_t> iterations;
  /// Layouts to compare (comma list); empty = default layout. "auto"
  /// (alone) races every registered layout instead of gridding.
  std::vector<std::string> layouts;
  /// Allocation strategies to compare; empty = all registered. "auto"
  /// (alone) races every registered allocator instead of gridding.
  std::vector<std::string> strategies;
  core::Phase2Options::Mode phase2 = core::Phase2Options::Mode::kAuto;
  std::int64_t time_budget_ms = 0;
  /// Worker threads of the grid (or racers in flight of an "auto"
  /// race). Grid output bytes are identical at any level; an auto
  /// race's winner is too, but which losers show as cancelled is not.
  std::size_t jobs = default_jobs();
  /// Wall-clock deadline of an "auto" race; 0 = none.
  std::int64_t race_budget_ms = 0;
  OutputFormat format = OutputFormat::kTable;
};

/// Options of `dspaddr serve`: the pipelined JSON-lines request loop.
struct ServeOptions {
  /// Engine result-cache capacity (0 disables caching).
  std::size_t cache_capacity = 256;
  /// Worker threads of the request pipeline (reader thread → shared
  /// TaskPool → ordered writer). Responses always come back in input
  /// order, byte-identical whatever the level.
  std::size_t jobs = default_jobs();
  /// Per-request cap on the *effective* simulated iteration count;
  /// larger requests are rejected as in-band request errors so one
  /// huge request cannot stall the whole pipeline window.
  std::int64_t max_iterations = 10'000'000;
  /// Wall-clock deadline of each "auto" request's race (overridable
  /// per request by a "race_budget_ms" member); 0 = none.
  std::int64_t race_budget_ms = 0;
  /// Persistent result store under the RAM cache (--store=PATH); empty
  /// = RAM-only. A restarted serve against the same file warm-starts
  /// from it.
  std::string store_path;
  /// fsync the store after every append (--store-fsync).
  bool store_fsync = false;
  /// Write the metrics registry as CSV to this path on exit; empty =
  /// no dump.
  std::string metrics_csv;
};

/// Options of the read-only catalog listings (machines / kernels).
struct ListOptions {
  OutputFormat format = OutputFormat::kTable;
};

/// Options of `dspaddr machines`: the registry listing, plus
/// `machines show <name>` for one full declarative spec.
struct MachinesOptions {
  OutputFormat format = OutputFormat::kTable;
  /// `.machine` files layered over the catalog (repeatable).
  std::vector<std::string> machine_files;
  /// Name given to `machines show`; empty = list all.
  std::string show;
};

RunOptions parse_run_options(const std::vector<std::string>& args);
BatchOptions parse_batch_options(const std::vector<std::string>& args);
CompareOptions parse_compare_options(const std::vector<std::string>& args);
ServeOptions parse_serve_options(const std::vector<std::string>& args);
ListOptions parse_list_options(const std::vector<std::string>& args,
                               const std::string& command);
MachinesOptions parse_machines_options(const std::vector<std::string>& args);

/// Splits a comma list into non-empty fields ("a,b" -> {"a", "b"});
/// throws UsageError on empty fields.
std::vector<std::string> parse_name_list(const std::string& text,
                                         const std::string& flag);

/// Comma list of sizes, each >= `min_value`.
std::vector<std::size_t> parse_size_list(const std::string& text,
                                         const std::string& flag,
                                         std::size_t min_value);

/// Comma list of signed integers, each >= `min_value`.
std::vector<std::int64_t> parse_int_list(const std::string& text,
                                         const std::string& flag,
                                         std::int64_t min_value);

}  // namespace dspaddr::cli
