// One machine-resolution path for run, batch, compare and serve.
//
// Every surface used to grow its own copy of "builtin name, then flag
// overrides" (cli/pipeline.cpp) or "request field, then overrides"
// (serve.cpp); with file-loadable machines the duplication would have
// tripled. A MachineSelector captures every way a machine can be named
// and resolve_machine applies one precedence order everywhere:
//
//   1. `file`  — a `.machine` file is layered over the registry;
//   2. `name`  — selects from the layered registry (unknown names fail
//                in-band, listing what is known); without a name, a
//                file selects its own first machine;
//   3. `inline_spec` — a full declarative JSON spec (serve
//                "machine_spec"); exclusive with name/file;
//   4. numeric overrides (registers / modify_range / modify_registers)
//      always win last, matching the historical flag semantics.
//
// With none of the above, the paper's minimal machine (K=1, L=0,
// M=1) is used under the name "custom".
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "agu/machine_desc.hpp"
#include "agu/machines.hpp"
#include "support/json.hpp"

namespace dspaddr::cli {

/// Everything a surface may say about which machine to use.
struct MachineSelector {
  /// Machine name (builtin or defined by `file`).
  std::optional<std::string> name;
  /// `.machine` file layered over the registry before the lookup.
  std::optional<std::string> file;
  /// Inline declarative spec (agu::machine_from_json schema); not
  /// owned. Exclusive with `name` and `file`.
  const support::JsonValue* inline_spec = nullptr;
  /// Numeric overrides; applied last.
  std::optional<std::size_t> registers;
  std::optional<std::int64_t> modify_range;
  std::optional<std::size_t> modify_registers;
  /// Description given to a machine the caller defined ad hoc (no
  /// name/file, or an inline spec without one).
  std::string default_description = "flag-defined AGU";
};

/// Resolves `selector` against the builtin catalog.
agu::AguSpec resolve_machine(const MachineSelector& selector);

/// Resolves `selector` against a caller-provided registry (batch
/// layering several --machine-file flags resolves against its own).
agu::AguSpec resolve_machine(const MachineSelector& selector,
                             const agu::MachineRegistry& registry);

}  // namespace dspaddr::cli
