// Top-level command dispatch of the dspaddr tool.
//
// `run_cli` is the whole program minus argv marshalling, writing to the
// given streams and returning the process exit code — so the CLI can be
// exercised from unit tests without spawning processes.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace dspaddr::cli {

/// Usage text of all subcommands.
std::string usage_text();

/// Runs one command line ("run --kernel f.c ..."); returns the exit
/// code (0 success, 1 pipeline failure, 2 usage error).
int run_cli(const std::vector<std::string>& args, std::ostream& out,
            std::ostream& err);

}  // namespace dspaddr::cli
