// Thin CLI adapter over the engine (`dspaddr run`).
//
// The pass sequence itself lives in engine::Engine; this layer only
// resolves the effective AGU configuration (builtin machine defaults
// overridden by explicit flags), builds the engine::Request, and
// renders the engine::Result as an ASCII report, one CSV row (shared
// schema with the batch runner) or the JSON serialization.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "agu/machines.hpp"
#include "cli/machine_resolve.hpp"
#include "cli/options.hpp"
#include "core/allocator.hpp"
#include "engine/engine.hpp"
#include "engine/strategy.hpp"
#include "ir/kernel.hpp"

namespace dspaddr::cli {

/// The effective machine of a run / compare invocation: one
/// MachineSelector (name, file, overrides) resolved through the shared
/// cli/machine_resolve path.
agu::AguSpec resolve_machine(const RunOptions& options);
agu::AguSpec resolve_machine(const CompareOptions& options);

/// One-shot convenience: runs the whole pipeline on `kernel` under
/// `machine` through a private engine::Engine. Drivers with repeated
/// traffic should hold their own Engine instead to benefit from the
/// result cache.
engine::Result run_pipeline(const ir::Kernel& kernel,
                            const agu::AguSpec& machine,
                            std::optional<std::uint64_t> iterations,
                            const core::Phase2Options& phase2 = {},
                            const std::string& layout =
                                engine::kDefaultLayout,
                            const std::string& strategy =
                                engine::kDefaultStrategy);

/// Same request, but through a caller-owned engine — the `run --store`
/// path uses this so a one-shot invocation can still answer from (and
/// write through to) a persistent store.
engine::Result run_pipeline(const ir::Kernel& kernel,
                            const agu::AguSpec& machine,
                            std::optional<std::uint64_t> iterations,
                            const core::Phase2Options& phase2,
                            const std::string& layout,
                            const std::string& strategy,
                            engine::Engine& engine);

/// Multi-section human-readable report.
std::string report_to_text(const engine::Result& report, bool show_program);

/// Single CSV row (header + row, same schema as the batch runner's CSV
/// via eval::batch_csv_header / eval::batch_row_fields).
std::string report_to_csv(const engine::Result& report);

}  // namespace dspaddr::cli
