// The unified single-kernel pipeline behind `dspaddr run`.
//
// Resolves the effective AGU configuration (builtin machine defaults
// overridden by explicit flags), drives
// parse -> layout -> phase-1/phase-2 allocation -> MR planning ->
// codegen -> simulation -> metrics, and renders the outcome as an ASCII
// report or one CSV row.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "agu/machines.hpp"
#include "agu/program.hpp"
#include "agu/simulator.hpp"
#include "cli/options.hpp"
#include "core/allocator.hpp"
#include "core/modify_registers.hpp"
#include "ir/kernel.hpp"

namespace dspaddr::cli {

/// The effective machine of one run: flag overrides applied on top of
/// the selected builtin machine (or a bare single-register AGU).
agu::AguSpec resolve_machine(const RunOptions& options);

/// Everything the pipeline produced for one kernel.
struct PipelineReport {
  ir::Kernel kernel;
  agu::AguSpec machine;
  std::size_t accesses = 0;
  std::optional<std::size_t> k_tilde;
  core::AllocationStats stats;
  int allocation_cost = 0;
  int intra_cost = 0;
  int wrap_cost = 0;
  core::ModifyRegisterPlan plan;
  agu::Program program;
  std::uint64_t iterations = 0;
  agu::SimResult sim;
  bool verified = false;
  std::int64_t baseline_size_words = 0;
  std::int64_t baseline_cycles = 0;
  std::int64_t optimized_size_words = 0;
  std::int64_t optimized_cycles = 0;
  double size_reduction_percent = 0.0;
  double speed_reduction_percent = 0.0;
  /// Register -> path rendering from the allocation.
  std::string allocation_text;
};

/// Runs the whole pipeline on `kernel` under `machine`; `iterations`
/// overrides the kernel's own count when set and `phase2` selects the
/// phase-2 solver (auto / exact / heuristic plus budgets).
PipelineReport run_pipeline(const ir::Kernel& kernel,
                            const agu::AguSpec& machine,
                            std::optional<std::uint64_t> iterations,
                            const core::Phase2Options& phase2 = {});

/// Multi-section human-readable report.
std::string report_to_text(const PipelineReport& report, bool show_program);

/// Single CSV row (same schema as the batch runner's CSV).
std::string report_to_csv(const PipelineReport& report);

}  // namespace dspaddr::cli
