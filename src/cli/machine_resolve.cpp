#include "cli/machine_resolve.hpp"

#include "support/check.hpp"

namespace dspaddr::cli {

agu::AguSpec resolve_machine(const MachineSelector& selector,
                             const agu::MachineRegistry& registry) {
  check_arg(selector.inline_spec == nullptr ||
                (!selector.name.has_value() && !selector.file.has_value()),
            "machine: an inline spec cannot be combined with a machine "
            "name or file");

  agu::MachineSpec machine;
  if (selector.name.has_value() || selector.file.has_value()) {
    agu::MachineRegistry layered = registry;
    std::string wanted = selector.name.value_or("");
    if (selector.file.has_value()) {
      const std::vector<agu::MachineSpec> loaded =
          agu::load_machine_file(*selector.file);
      if (wanted.empty()) {
        // A file without an explicit name selects its own first
        // machine (files usually define exactly one).
        wanted = loaded.front().name;
      }
      for (const agu::MachineSpec& spec : loaded) {
        layered.add(spec);
      }
    }
    machine = layered.get(wanted);
  } else if (selector.inline_spec != nullptr) {
    machine = agu::machine_from_json(*selector.inline_spec);
    if (machine.name.empty()) {
      machine.name = "custom";
    }
    if (machine.description.empty()) {
      machine.description = selector.default_description;
    }
    // An inline spec is user data like a file: reject malformed specs
    // (no address registers, windows excluding 0) in-band.
    machine.validate();
  } else {
    machine.name = "custom";
    machine.description = selector.default_description;
  }

  if (selector.registers.has_value()) {
    machine.set_address_registers(*selector.registers);
  }
  if (selector.modify_range.has_value()) {
    machine.set_modify_range(*selector.modify_range);
  }
  if (selector.modify_registers.has_value()) {
    machine.set_modify_registers(*selector.modify_registers);
  }
  return machine;
}

agu::AguSpec resolve_machine(const MachineSelector& selector) {
  return resolve_machine(selector, agu::MachineRegistry::builtin());
}

}  // namespace dspaddr::cli
