#include "cli/options.hpp"

#include <limits>
#include <thread>

#include "engine/portfolio.hpp"
#include "support/strings.hpp"

namespace dspaddr::cli {
namespace {

/// Cursor over one subcommand's arguments with flag-value helpers.
class ArgCursor {
public:
  explicit ArgCursor(const std::vector<std::string>& args) : args_(args) {}

  bool done() const { return index_ >= args_.size(); }
  const std::string& peek() const { return args_[index_]; }
  const std::string& take() { return args_[index_++]; }

  /// Consumes the value of flag `flag` (the next argument).
  std::string take_value(const std::string& flag) {
    if (done()) {
      throw UsageError("missing value for " + flag);
    }
    return take();
  }

private:
  const std::vector<std::string>& args_;
  std::size_t index_ = 0;
};

std::int64_t parse_int(const std::string& text, const std::string& flag,
                       std::int64_t min_value) {
  std::size_t consumed = 0;
  std::int64_t value = 0;
  try {
    value = std::stoll(text, &consumed);
  } catch (const std::exception&) {
    throw UsageError(flag + ": expected an integer, got '" + text + "'");
  }
  if (consumed != text.size()) {
    throw UsageError(flag + ": expected an integer, got '" + text + "'");
  }
  if (value < min_value) {
    throw UsageError(flag + ": value must be >= " +
                     std::to_string(min_value) + ", got " + text);
  }
  return value;
}

std::size_t parse_size(const std::string& text, const std::string& flag,
                       std::size_t min_value) {
  const std::int64_t value =
      parse_int(text, flag, static_cast<std::int64_t>(min_value));
  return static_cast<std::size_t>(value);
}

/// Recognizes `--flag value` and `--flag=value`; returns true and leaves
/// the value in `value` when `arg` matches `flag`.
bool match_flag(const std::string& arg, const std::string& flag,
                ArgCursor& cursor, std::string& value) {
  if (arg == flag) {
    value = cursor.take_value(flag);
    return true;
  }
  const std::string prefix = flag + "=";
  if (arg.rfind(prefix, 0) == 0) {
    value = arg.substr(prefix.size());
    return true;
  }
  return false;
}

}  // namespace

OutputFormat parse_format(const std::string& text) {
  if (text == "table") {
    return OutputFormat::kTable;
  }
  if (text == "csv") {
    return OutputFormat::kCsv;
  }
  if (text == "json") {
    return OutputFormat::kJson;
  }
  throw UsageError("--format: expected 'table', 'csv' or 'json', got '" +
                   text + "'");
}

namespace {

/// Validates one layout name against the engine registry; "auto" asks
/// the portfolio engine to race every registered layout.
std::string parse_layout_name(const std::string& text) {
  if (text == engine::kAutoStrategy) {
    return text;
  }
  if (engine::StrategyRegistry::builtin().layout(text) == nullptr) {
    throw UsageError("--layout: unknown layout strategy '" + text +
                     "' (auto, " + engine::known_layout_names() + ")");
  }
  return text;
}

/// Validates one allocation-strategy name against the engine registry;
/// "auto" races every registered allocator.
std::string parse_strategy_name(const std::string& text) {
  if (text == engine::kAutoStrategy) {
    return text;
  }
  if (engine::StrategyRegistry::builtin().allocation(text) == nullptr) {
    throw UsageError("--strategy: unknown allocation strategy '" + text +
                     "' (auto, " + engine::known_strategy_names() + ")");
  }
  return text;
}

std::vector<std::string> parse_layout_list(const std::string& text) {
  std::vector<std::string> layouts;
  for (const std::string& name : parse_name_list(text, "--layout")) {
    layouts.push_back(parse_layout_name(name));
  }
  return layouts;
}

std::vector<std::string> parse_strategy_list(const std::string& text) {
  std::vector<std::string> strategies;
  for (const std::string& name : parse_name_list(text, "--strategy")) {
    strategies.push_back(parse_strategy_name(name));
  }
  return strategies;
}

}  // namespace

std::size_t default_jobs() {
  const unsigned hardware = std::thread::hardware_concurrency();
  return hardware == 0 ? 1 : static_cast<std::size_t>(hardware);
}

std::size_t parse_jobs(const std::string& text) {
  return parse_size(text, "--jobs", 1);
}

core::Phase2Options::Mode parse_phase2_mode(const std::string& text) {
  if (text == "auto") {
    return core::Phase2Options::Mode::kAuto;
  }
  if (text == "exact") {
    return core::Phase2Options::Mode::kExact;
  }
  if (text == "heuristic") {
    return core::Phase2Options::Mode::kHeuristic;
  }
  if (text == "tiled") {
    return core::Phase2Options::Mode::kTiled;
  }
  throw UsageError(
      "--phase2: expected 'auto', 'exact', 'heuristic' or 'tiled', got '" +
      text + "'");
}

std::vector<std::string> parse_name_list(const std::string& text,
                                         const std::string& flag) {
  std::vector<std::string> names;
  for (const std::string& field : support::split(text, ',')) {
    const std::string name{support::trim(field)};
    if (name.empty()) {
      throw UsageError(flag + ": empty name in list '" + text + "'");
    }
    names.push_back(name);
  }
  if (names.empty()) {
    throw UsageError(flag + ": expected a non-empty comma list");
  }
  return names;
}

std::vector<std::size_t> parse_size_list(const std::string& text,
                                         const std::string& flag,
                                         std::size_t min_value) {
  std::vector<std::size_t> values;
  for (const std::string& field : parse_name_list(text, flag)) {
    values.push_back(parse_size(field, flag, min_value));
  }
  return values;
}

std::vector<std::int64_t> parse_int_list(const std::string& text,
                                         const std::string& flag,
                                         std::int64_t min_value) {
  std::vector<std::int64_t> values;
  for (const std::string& field : parse_name_list(text, flag)) {
    values.push_back(parse_int(field, flag, min_value));
  }
  return values;
}

RunOptions parse_run_options(const std::vector<std::string>& args) {
  RunOptions options;
  ArgCursor cursor(args);
  std::string value;
  while (!cursor.done()) {
    const std::string arg = cursor.take();
    if (match_flag(arg, "--kernel", cursor, value)) {
      options.kernel_path = value;
    } else if (match_flag(arg, "--machine", cursor, value)) {
      options.machine = value;
    } else if (match_flag(arg, "--machine-file", cursor, value)) {
      options.machine_file = value;
    } else if (match_flag(arg, "--registers", cursor, value)) {
      options.registers = parse_size(value, "--registers", 1);
    } else if (match_flag(arg, "--modify-range", cursor, value)) {
      options.modify_range = parse_int(value, "--modify-range", 0);
    } else if (match_flag(arg, "--modify-registers", cursor, value)) {
      options.modify_registers = parse_size(value, "--modify-registers", 0);
    } else if (match_flag(arg, "--iterations", cursor, value)) {
      options.iterations = static_cast<std::uint64_t>(
          parse_int(value, "--iterations", 1));
    } else if (match_flag(arg, "--layout", cursor, value)) {
      options.layout = parse_layout_name(value);
    } else if (match_flag(arg, "--strategy", cursor, value)) {
      options.strategy = parse_strategy_name(value);
    } else if (match_flag(arg, "--phase2", cursor, value)) {
      options.phase2 = parse_phase2_mode(value);
    } else if (match_flag(arg, "--phase2-jobs", cursor, value)) {
      options.phase2_jobs = parse_size(value, "--phase2-jobs", 1);
    } else if (match_flag(arg, "--phase2-steal-grain", cursor, value)) {
      options.phase2_steal_grain =
          parse_size(value, "--phase2-steal-grain", 1);
    } else if (match_flag(arg, "--phase2-window", cursor, value)) {
      if (value == "auto") {
        options.phase2_window_auto = true;
      } else {
        options.phase2_window = parse_size(value, "--phase2-window", 8);
      }
    } else if (match_flag(arg, "--time-budget-ms", cursor, value)) {
      options.time_budget_ms = parse_int(value, "--time-budget-ms", 0);
    } else if (match_flag(arg, "--jobs", cursor, value)) {
      options.jobs = parse_jobs(value);
    } else if (match_flag(arg, "--race-budget-ms", cursor, value)) {
      options.race_budget_ms = parse_int(value, "--race-budget-ms", 0);
    } else if (match_flag(arg, "--format", cursor, value)) {
      options.format = parse_format(value);
    } else if (arg == "--program") {
      options.show_program = true;
    } else if (match_flag(arg, "--store", cursor, value)) {
      options.store_path = value;
    } else if (arg == "--store-fsync") {
      options.store_fsync = true;
    } else if (match_flag(arg, "--metrics-csv", cursor, value)) {
      options.metrics_csv = value;
    } else {
      throw UsageError("run: unknown argument '" + arg + "'");
    }
  }
  if (options.kernel_path.empty()) {
    throw UsageError("run: --kernel <file> is required");
  }
  if (options.store_fsync && options.store_path.empty()) {
    throw UsageError("run: --store-fsync requires --store <file>");
  }
  return options;
}

BatchOptions parse_batch_options(const std::vector<std::string>& args) {
  BatchOptions options;
  ArgCursor cursor(args);
  std::string value;
  while (!cursor.done()) {
    const std::string arg = cursor.take();
    if (match_flag(arg, "--kernel", cursor, value)) {
      options.kernel_paths.push_back(value);
    } else if (match_flag(arg, "--builtin", cursor, value)) {
      const auto names = parse_name_list(value, "--builtin");
      options.builtin_kernels.insert(options.builtin_kernels.end(),
                                     names.begin(), names.end());
    } else if (match_flag(arg, "--machines", cursor, value)) {
      options.machines = parse_name_list(value, "--machines");
    } else if (match_flag(arg, "--machine-file", cursor, value)) {
      options.machine_files.push_back(value);
    } else if (match_flag(arg, "--registers", cursor, value)) {
      options.register_counts = parse_size_list(value, "--registers", 1);
    } else if (match_flag(arg, "--modify-range", cursor, value)) {
      options.modify_ranges = parse_int_list(value, "--modify-range", 0);
    } else if (match_flag(arg, "--layout", cursor, value)) {
      options.layouts = parse_layout_list(value);
    } else if (match_flag(arg, "--strategy", cursor, value)) {
      options.strategies = parse_strategy_list(value);
    } else if (match_flag(arg, "--jobs", cursor, value)) {
      options.jobs = parse_jobs(value);
    } else if (match_flag(arg, "--phase2", cursor, value)) {
      options.phase2 = parse_phase2_mode(value);
    } else if (match_flag(arg, "--phase2-jobs", cursor, value)) {
      options.phase2_jobs = parse_size(value, "--phase2-jobs", 1);
    } else if (match_flag(arg, "--phase2-steal-grain", cursor, value)) {
      options.phase2_steal_grain =
          parse_size(value, "--phase2-steal-grain", 1);
    } else if (match_flag(arg, "--phase2-window", cursor, value)) {
      if (value == "auto") {
        options.phase2_window_auto = true;
      } else {
        options.phase2_window = parse_size(value, "--phase2-window", 8);
      }
    } else if (match_flag(arg, "--time-budget-ms", cursor, value)) {
      options.time_budget_ms = parse_int(value, "--time-budget-ms", 0);
    } else if (match_flag(arg, "--race-budget-ms", cursor, value)) {
      options.race_budget_ms = parse_int(value, "--race-budget-ms", 0);
    } else if (match_flag(arg, "--format", cursor, value)) {
      options.format = parse_format(value);
    } else if (match_flag(arg, "--out", cursor, value)) {
      options.output_path = value;
    } else if (match_flag(arg, "--store", cursor, value)) {
      options.store_path = value;
    } else if (arg == "--store-fsync") {
      options.store_fsync = true;
    } else if (match_flag(arg, "--metrics-csv", cursor, value)) {
      options.metrics_csv = value;
    } else {
      throw UsageError("batch: unknown argument '" + arg + "'");
    }
  }
  if (options.kernel_paths.empty() && options.builtin_kernels.empty()) {
    throw UsageError(
        "batch: at least one --kernel <file> or --builtin <names> is "
        "required");
  }
  if (options.format == OutputFormat::kJson) {
    throw UsageError(
        "batch: --format json is not supported (pipe requests through "
        "'dspaddr serve' for JSON-lines output)");
  }
  if (options.store_fsync && options.store_path.empty()) {
    throw UsageError("batch: --store-fsync requires --store <file>");
  }
  return options;
}

CompareOptions parse_compare_options(const std::vector<std::string>& args) {
  CompareOptions options;
  ArgCursor cursor(args);
  std::string value;
  while (!cursor.done()) {
    const std::string arg = cursor.take();
    if (match_flag(arg, "--kernel", cursor, value)) {
      options.kernel = value;
    } else if (match_flag(arg, "--machine", cursor, value)) {
      options.machine = value;
    } else if (match_flag(arg, "--machine-file", cursor, value)) {
      options.machine_file = value;
    } else if (match_flag(arg, "--registers", cursor, value)) {
      options.registers = parse_size(value, "--registers", 1);
    } else if (match_flag(arg, "--modify-range", cursor, value)) {
      options.modify_range = parse_int(value, "--modify-range", 0);
    } else if (match_flag(arg, "--modify-registers", cursor, value)) {
      options.modify_registers = parse_size(value, "--modify-registers", 0);
    } else if (match_flag(arg, "--iterations", cursor, value)) {
      options.iterations = static_cast<std::uint64_t>(
          parse_int(value, "--iterations", 1));
    } else if (match_flag(arg, "--layout", cursor, value)) {
      options.layouts = parse_layout_list(value);
    } else if (match_flag(arg, "--strategy", cursor, value)) {
      options.strategies = parse_strategy_list(value);
    } else if (match_flag(arg, "--phase2", cursor, value)) {
      options.phase2 = parse_phase2_mode(value);
    } else if (match_flag(arg, "--time-budget-ms", cursor, value)) {
      options.time_budget_ms = parse_int(value, "--time-budget-ms", 0);
    } else if (match_flag(arg, "--jobs", cursor, value)) {
      options.jobs = parse_jobs(value);
    } else if (match_flag(arg, "--race-budget-ms", cursor, value)) {
      options.race_budget_ms = parse_int(value, "--race-budget-ms", 0);
    } else if (match_flag(arg, "--format", cursor, value)) {
      options.format = parse_format(value);
    } else {
      throw UsageError("compare: unknown argument '" + arg + "'");
    }
  }
  if (options.kernel.empty()) {
    throw UsageError("compare: --kernel <file-or-builtin> is required");
  }
  // An "auto" axis already races every candidate; gridding it against
  // other names would double-run the same cells ambiguously.
  for (const std::vector<std::string>* list :
       {&options.layouts, &options.strategies}) {
    if (list->size() > 1) {
      for (const std::string& name : *list) {
        if (name == engine::kAutoStrategy) {
          throw UsageError(
              "compare: 'auto' must be the only value of its list (it "
              "already covers every registered candidate)");
        }
      }
    }
  }
  return options;
}

ServeOptions parse_serve_options(const std::vector<std::string>& args) {
  ServeOptions options;
  ArgCursor cursor(args);
  std::string value;
  while (!cursor.done()) {
    const std::string arg = cursor.take();
    if (match_flag(arg, "--cache-capacity", cursor, value)) {
      options.cache_capacity = parse_size(value, "--cache-capacity", 0);
    } else if (match_flag(arg, "--jobs", cursor, value)) {
      options.jobs = parse_jobs(value);
    } else if (match_flag(arg, "--max-iterations", cursor, value)) {
      options.max_iterations = parse_int(value, "--max-iterations", 1);
    } else if (match_flag(arg, "--race-budget-ms", cursor, value)) {
      options.race_budget_ms = parse_int(value, "--race-budget-ms", 0);
    } else if (match_flag(arg, "--store", cursor, value)) {
      options.store_path = value;
    } else if (arg == "--store-fsync") {
      options.store_fsync = true;
    } else if (match_flag(arg, "--metrics-csv", cursor, value)) {
      options.metrics_csv = value;
    } else {
      throw UsageError("serve: unknown argument '" + arg + "'");
    }
  }
  if (options.store_fsync && options.store_path.empty()) {
    throw UsageError("serve: --store-fsync requires --store <file>");
  }
  return options;
}

MachinesOptions parse_machines_options(const std::vector<std::string>& args) {
  MachinesOptions options;
  ArgCursor cursor(args);
  std::string value;
  bool show_seen = false;
  while (!cursor.done()) {
    const std::string arg = cursor.take();
    if (match_flag(arg, "--format", cursor, value)) {
      options.format = parse_format(value);
    } else if (match_flag(arg, "--machine-file", cursor, value)) {
      options.machine_files.push_back(value);
    } else if (arg == "show") {
      if (show_seen) {
        throw UsageError("machines: 'show' given twice");
      }
      options.show = cursor.take_value("machines show");
      show_seen = true;
    } else {
      throw UsageError("machines: unknown argument '" + arg + "'");
    }
  }
  return options;
}

ListOptions parse_list_options(const std::vector<std::string>& args,
                               const std::string& command) {
  ListOptions options;
  ArgCursor cursor(args);
  std::string value;
  while (!cursor.done()) {
    const std::string arg = cursor.take();
    if (match_flag(arg, "--format", cursor, value)) {
      options.format = parse_format(value);
    } else {
      throw UsageError(command + ": unknown argument '" + arg + "'");
    }
  }
  return options;
}

}  // namespace dspaddr::cli
