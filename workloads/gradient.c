// Central-difference gradient with squared-magnitude accumulation.
int f[128], g[128], e[128];
for (i = 2; i < 126; i++) {
  g[i] = f[i+1] - f[i-1];
  e[i] = g[i] * g[i];
}
