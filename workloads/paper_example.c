/* The worked example of Basu/Leupers/Marwedel, DATE 1998, section 2.
 * Run: dspaddr_opt -K 2 -M 1 workloads/paper_example.c --asm --sim 100
 */
int A[64];
for (i = 2; i <= 33; i++)
{ /* a_1 */ A[i+1];  /* offset  1 */
  /* a_2 */ A[i];    /* offset  0 */
  /* a_3 */ A[i+2];  /* offset  2 */
  /* a_4 */ A[i-1];  /* offset -1 */
  /* a_5 */ A[i+1];  /* offset  1 */
  /* a_6 */ A[i];    /* offset  0 */
  /* a_7 */ A[i-2];  /* offset -2 */
}
