// Three-tap smoothing filter written as plain C.
// Run: dspaddr_opt -K 2 workloads/smooth3.c --sim 50
int x[64], y[64];
for (i = 1; i <= 62; i++) {
  y[i] = x[i-1] + 2 * x[i] + x[i+1];
}
